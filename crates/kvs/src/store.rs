//! The in-memory key-value store: slab-backed items, a pluggable hash
//! index, CLOCK freshness, and the three-phase Multi-Get pipeline the
//! paper instruments (§VI-A, Fig. 10/11b):
//!
//! 1. **Pre-processing** — parse the batch, compute a 32-bit hash per
//!    key, and partition the batch by shard.
//! 2. **Hash-table lookup** — the batched index probe (the phase SIMD
//!    accelerates), run per shard under that shard's shared lock.
//! 3. **Post-processing** — resolve object pointers, verify the full key
//!    against the slab, copy values into the response, and update CLOCK
//!    freshness metadata.
//!
//! # Sharding
//!
//! The store is split into `S` power-of-two **shards** (the paper's first
//! named piece of future work is concurrent mixed read/write workloads;
//! sharding is the standard memcached scaling recipe). Each shard owns its
//! own slab arena, item table, hash index, CLOCK ring, and statistics, all
//! behind one `RwLock`. Keys route to shards by an independent
//! multiply-shift hash over the 32-bit key hash — the same scheme as
//! [`simdht_table::sharded::ShardedTable`] — so a hot index bucket and a
//! hot shard are uncorrelated.
//!
//! Writes (`set`/`delete`) lock only their key's shard. A Multi-Get is
//! partitioned by shard and runs one batched SIMD lookup per non-empty
//! shard; it holds **at most one shard lock at a time** (see DESIGN.md,
//! "Shard routing and lock hierarchy"), so lookups scale with shard count
//! and can never deadlock against multi-key writers.
//!
//! `KvStore` spawns no background threads: dropping it (after the last
//! `Arc` clone goes away) only frees memory and cannot race an in-flight
//! request, because any in-flight request holds a shard guard borrowed
//! from the store itself.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::RwLock;

use crate::clock::Clock;
use crate::index::{hash_key, hash_keys_into, HashIndex, IndexError};
use crate::item::{
    decode_row, item_decode_checked, item_key, item_value, read_item_racy, write_item, ItemTable,
    NO_ITEM,
};
use crate::seqlock::{SeqCount, SeqWriteGuard};
use crate::slab::{SlabAllocator, SlabError, SlabRef};

/// Default Multi-Get prefetch look-ahead (`G`) used when
/// [`StoreConfig::prefetch_depth`] is `None`. Eight keeps ~8 independent
/// cache-line requests in flight per stage — within every recent x86 core's
/// ~10–16 outstanding L1 misses (its miss-status registers) without
/// crowding out the demand loads.
pub const DEFAULT_PREFETCH_DEPTH: usize = 8;

/// How `get`/`mget` readers synchronize with writers (DESIGN.md §11).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ReadMode {
    /// Readers take the shard's shared `RwLock` (the classic path; always
    /// available, byte-identical results to `Optimistic`).
    #[default]
    Locked,
    /// Seqlock optimistic reads: readers never take the shard lock and
    /// never write shared state — they snapshot the shard's version
    /// counter, probe/copy racily, and re-validate (per-row words for
    /// hits, the shard counter for misses), retrying once and then
    /// falling back to the locked path. Requires every shard index to
    /// report [`HashIndex::optimistic_probe_safe`]; otherwise the store
    /// silently stays on the locked path.
    Optimistic,
}

impl ReadMode {
    /// Parse a `--read-mode` flag value.
    pub fn parse(s: &str) -> Option<ReadMode> {
        match s {
            "locked" => Some(ReadMode::Locked),
            "optimistic" => Some(ReadMode::Optimistic),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            ReadMode::Locked => "locked",
            ReadMode::Optimistic => "optimistic",
        }
    }
}

/// Store construction parameters.
#[derive(Copy, Clone, Debug)]
pub struct StoreConfig {
    /// Slab memory budget in bytes (split evenly across shards).
    pub memory_budget: usize,
    /// Expected maximum live items (sizes the hash index; split across
    /// shards).
    pub capacity_items: usize,
    /// Number of shards (rounded up to a power of two; `1` = the classic
    /// single-lock store).
    pub shards: usize,
    /// Multi-Get software-prefetch look-ahead `G` (DESIGN.md §9):
    /// `None` = auto ([`DEFAULT_PREFETCH_DEPTH`]), `Some(0)` = disabled,
    /// `Some(g)` = prefetch index buckets / item rows / slab chunks `g`
    /// keys ahead of the probe or verification that will touch them.
    /// Tunable at runtime via [`KvStore::set_prefetch_depth`].
    pub prefetch_depth: Option<usize>,
    /// Reader synchronization mode (DESIGN.md §11). Tunable at runtime
    /// via [`KvStore::set_read_mode`].
    pub read_mode: ReadMode,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_budget: 64 << 20,
            capacity_items: 100_000,
            shards: 1,
            prefetch_depth: None,
            read_mode: ReadMode::Locked,
        }
    }
}

/// Error from [`KvStore::set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object cannot fit in any slab class.
    ObjectTooLarge,
    /// Could not make room even after evicting everything.
    OutOfMemory,
    /// The hash index refused the entry even after eviction attempts.
    IndexFull,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ObjectTooLarge => write!(f, "object exceeds largest slab class"),
            StoreError::OutOfMemory => write!(f, "out of memory after eviction"),
            StoreError::IndexFull => write!(f, "hash index full after eviction"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of a [`KvStore::cas`] compare-and-swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The expected version matched; the value was replaced and the key's
    /// version advanced to the carried value.
    Stored(u64),
    /// The key exists but its current version (carried) differs from the
    /// expected one; nothing was written.
    Conflict(u64),
    /// The key does not exist (or had expired); nothing was written.
    NotFound,
}

/// Process-coarse monotonic seconds — the store's TTL clock (DESIGN.md
/// §13). Second granularity keeps the expiry metadata word cheap to
/// compare on the read path; the epoch is process start, so absolute
/// `expires_at` values are only meaningful within one process.
fn coarse_now() -> u64 {
    use std::sync::OnceLock;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs()
}

/// `true` when expiry metadata word `at` marks an item dead at `now`
/// (0 = never expires).
#[inline(always)]
fn is_expired(at: u64, now: u64) -> bool {
    at != 0 && at <= now
}

/// Per-phase elapsed nanoseconds of one Multi-Get (Fig. 11b breakdown).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Pre-processing: parse + hash + shard partition.
    pub pre: u64,
    /// Hash-table lookup (batched, summed over probed shards).
    pub lookup: u64,
    /// Post-processing: verify + copy + CLOCK updates.
    pub post: u64,
}

impl PhaseNanos {
    /// Total server data-access time.
    pub fn total(&self) -> u64 {
        self.pre + self.lookup + self.post
    }

    /// Accumulate another breakdown.
    pub fn add(&mut self, other: PhaseNanos) {
        self.pre += other.pre;
        self.lookup += other.lookup;
        self.post += other.post;
    }
}

/// Result of one Multi-Get.
#[derive(Copy, Clone, Debug, Default)]
pub struct MGetOutcome {
    /// Keys found.
    pub found: usize,
    /// Phase timing.
    pub phases: PhaseNanos,
}

/// Result of one batched Multi-Set ([`KvStore::set_multi`]).
#[derive(Copy, Clone, Debug, Default)]
pub struct SetMultiOutcome {
    /// Keys stored successfully.
    pub stored: usize,
    /// Phase timing (pre = hash + partition, lookup = the candidate
    /// prefetch probe, post = the inserts themselves).
    pub phases: PhaseNanos,
}

/// Reusable scratch + per-key results for [`KvStore::set_multi`] — the
/// write path's counterpart to [`MGetResponse`]. Reusing one batch across
/// calls avoids per-request allocation, as a real server does.
#[derive(Debug, Default)]
pub struct SetMultiBatch {
    results: Vec<Result<(), StoreError>>,
    hashes: Vec<u32>,
    per_shard: Vec<Vec<u32>>,
    sub_hashes: Vec<u32>,
    candidates: Vec<u32>,
}

impl SetMultiBatch {
    /// An empty batch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-key outcomes of the last [`KvStore::set_multi`], in request
    /// order (duplicate keys each get the outcome of their own insert).
    pub fn results(&self) -> &[Result<(), StoreError>] {
        &self.results
    }
}

/// Bytes before the first per-key record of a Multi-Get response frame:
/// `[opcode: u8] [request id: u64 LE] [key count: u16 LE]`.
const RESP_HEADER_BYTES: usize = 11;

/// A reusable Multi-Get response buffer that **is** the wire frame: `mget`
/// Phase 3 writes each value directly after its `[found: u8][len: u32 LE]`
/// record in one contiguous buffer laid out exactly as
/// `crate::protocol::Response::MGet` encodes, behind an 11-byte header
/// placeholder. [`MGetResponse::seal_frame`] then patches in the request id
/// and key count and appends the CRC-32 trailer — so the daemon's reply
/// path sends the buffer as-is, with no per-value copy (DESIGN.md §9).
#[derive(Debug, Default, Clone)]
pub struct MGetResponse {
    /// The in-progress wire body (header placeholder + per-key records in
    /// request order; CRC appended by `seal_frame`).
    buf: Vec<u8>,
    /// Per request slot: `(offset, len)` of the value bytes inside `buf`.
    entries: Vec<Option<(u32, u32)>>,
    /// Total value bytes (response-size accounting, excludes framing).
    value_bytes: usize,
    sealed: bool,
    // Reusable scratch for the lookup pipeline (no per-request allocation).
    hashes: Vec<u32>,
    candidates: Vec<u32>,
    per_shard: Vec<Vec<u32>>,
    sub_hashes: Vec<u32>,
    refs: Vec<Option<SlabRef>>,
    words: Vec<u64>,
    chunk_buf: Vec<u8>,
    reorder: Vec<u8>,
}

impl MGetResponse {
    /// Create an empty response buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.buf.clear();
        self.buf.resize(RESP_HEADER_BYTES, 0);
        self.buf[0] = crate::protocol::OP_MGET_RESP;
        self.entries.clear();
        self.entries.resize(n, None);
        self.value_bytes = 0;
        self.sealed = false;
    }

    /// Number of slots (keys in the request).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the response holds no slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value returned for request slot `i`, if found.
    pub fn value(&self, i: usize) -> Option<&[u8]> {
        self.entries[i].map(|(off, len)| &self.buf[off as usize..(off + len) as usize])
    }

    /// Append a hit record `[1][len][value]` for slot `i`.
    fn push_hit(&mut self, i: usize, value: &[u8]) {
        self.buf.push(1);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        let off = self.buf.len() as u32;
        self.buf.extend_from_slice(value);
        self.entries[i] = Some((off, value.len() as u32));
        self.value_bytes += value.len();
    }

    /// Append a miss record `[0]`.
    fn push_miss(&mut self) {
        self.buf.push(0);
    }

    /// Undo the records appended by a failed optimistic shard pass. A
    /// shard's records are always the contiguous tail of `buf` (each shard
    /// appends in one run), so truncating to the pre-pass marks and
    /// clearing the slots the pass filled restores the response exactly.
    fn rollback(&mut self, buf_len: usize, value_bytes: usize, slots: impl Iterator<Item = usize>) {
        self.buf.truncate(buf_len);
        self.value_bytes = value_bytes;
        for i in slots {
            self.entries[i] = None;
        }
    }

    /// Rewrite `buf`'s records into request order. A single-shard `mget`
    /// emits records in request order already; the multi-shard path emits
    /// them grouped by shard, so one compaction pass (the same one copy per
    /// value the old dedicated encoder paid) restores wire order here.
    fn finalize_request_order(&mut self) {
        let mut wire = std::mem::take(&mut self.reorder);
        wire.clear();
        wire.extend_from_slice(&self.buf[..RESP_HEADER_BYTES]);
        for e in self.entries.iter_mut() {
            match e {
                Some((off, len)) => {
                    wire.push(1);
                    wire.extend_from_slice(&len.to_le_bytes());
                    let new_off = wire.len() as u32;
                    wire.extend_from_slice(&self.buf[*off as usize..(*off + *len) as usize]);
                    *off = new_off;
                }
                None => wire.push(0),
            }
        }
        std::mem::swap(&mut self.buf, &mut wire);
        self.reorder = wire;
    }

    /// Turn the response into a complete, CRC-sealed wire frame for request
    /// `id` and return it, ready for `write_frame`. Call once per `mget`
    /// (the next `mget` resets the buffer); [`MGetResponse::value`] remains
    /// usable after sealing.
    ///
    /// # Panics
    ///
    /// Panics if called twice without an intervening `mget`, before any
    /// `mget`, or with more than `u16::MAX` slots (the protocol's key-count
    /// field width; requests are decoded with the same bound).
    pub fn seal_frame(&mut self, id: u64) -> &[u8] {
        assert!(!self.sealed, "seal_frame called twice on one response");
        assert!(
            self.buf.len() >= RESP_HEADER_BYTES,
            "seal_frame requires a completed mget"
        );
        assert!(
            self.entries.len() <= usize::from(u16::MAX),
            "too many keys for one frame"
        );
        self.buf[1..9].copy_from_slice(&id.to_le_bytes());
        self.buf[9..11].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let crc = crate::protocol::crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.sealed = true;
        &self.buf
    }

    /// Total value bytes returned (for response-size accounting).
    pub fn payload_bytes(&self) -> usize {
        self.value_bytes
    }

    /// Append one request's slice of a coalesced batch as a complete,
    /// length-prefixed, CRC-sealed MGet response frame for request `id`.
    ///
    /// The reactor server concatenates the keys of many pipelined
    /// requests into one wide `mget` so the lookup pipeline runs at full
    /// batch width, then scatters the shared response buffer back out
    /// per request. Slot range `slots` must be the contiguous run of
    /// batch slots belonging to one request; the bytes appended to `out`
    /// are identical to what the thread-per-connection path produces for
    /// that request alone (`write_frame` of [`MGetResponse::seal_frame`]),
    /// so the two server modes are byte-compatible on the wire.
    ///
    /// Returns the number of bytes appended (frame prefix included).
    ///
    /// # Panics
    ///
    /// Panics if called after [`MGetResponse::seal_frame`] (the batch
    /// buffer must stay unsealed — a coalesced batch is never shipped as
    /// one frame), if `slots` is out of bounds or not ascending, or if
    /// the range holds more than `u16::MAX` slots (the per-request
    /// key-count bound the protocol enforces on decode).
    pub fn append_subframe(
        &self,
        slots: std::ops::Range<usize>,
        id: u64,
        out: &mut Vec<u8>,
    ) -> usize {
        assert!(!self.sealed, "append_subframe requires an unsealed batch");
        assert!(
            slots.start <= slots.end && slots.end <= self.entries.len(),
            "slot range {slots:?} out of bounds for {} slots",
            self.entries.len()
        );
        assert!(
            slots.len() <= usize::from(u16::MAX),
            "too many keys for one frame"
        );
        // Walk the records preceding the range to find its byte span: a
        // hit occupies `[1][len u32][value]` (5 + len bytes), a miss one
        // `[0]` byte.
        let mut cursor = RESP_HEADER_BYTES;
        let mut start = None;
        for (i, e) in self.entries.iter().enumerate().take(slots.end) {
            if i == slots.start {
                start = Some(cursor);
            }
            cursor += match e {
                Some((_, len)) => 5 + *len as usize,
                None => 1,
            };
        }
        let (start, end) = (start.unwrap_or(cursor), cursor);

        let mut header = [0u8; RESP_HEADER_BYTES];
        header[0] = crate::protocol::OP_MGET_RESP;
        header[1..9].copy_from_slice(&id.to_le_bytes());
        header[9..11].copy_from_slice(&(slots.len() as u16).to_le_bytes());
        let records = &self.buf[start..end];
        let frame_len = RESP_HEADER_BYTES + records.len() + 4;
        let before = out.len();
        out.reserve(4 + frame_len);
        out.extend_from_slice(&(frame_len as u32).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(records);
        let mut crc = crate::protocol::Crc32::new();
        crc.update(&header);
        crc.update(records);
        out.extend_from_slice(&crc.finalize().to_le_bytes());
        out.len() - before
    }
}

/// Multiply-shift shard routing over a 32-bit key hash — the same scheme
/// `simdht_table::sharded::ShardedTable` uses for its table keys, exposed
/// so property tests can prove the two layers agree on placement for the
/// same `(mul, shift, mask)` parameters.
#[inline(always)]
pub fn shard_route(hash: u32, mul: u32, shift: u32, mask: usize) -> usize {
    (hash.wrapping_mul(mul) >> shift) as usize & mask
}

/// The fixed routing multiplier (odd, independent of the FNV key hash and
/// of every index's bucket function).
pub const SHARD_MUL: u32 = 0x9E37_79B9;

/// Snapshot of one shard's counters (or their sum, via
/// [`KvStore::totals`]). Conservation invariant: summing any field across
/// [`KvStore::shard_stats`] equals the same field of [`KvStore::totals`],
/// and `items` sums to [`KvStore::len`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live items.
    pub items: usize,
    /// Successful `set` calls routed here.
    pub sets: u64,
    /// Successful `delete` calls routed here.
    pub deletes: u64,
    /// CLOCK evictions performed here.
    pub evictions: u64,
    /// Multi-Get keys probed here.
    pub mget_keys: u64,
    /// Multi-Get keys found here.
    pub mget_hits: u64,
    /// Successful `cas` stores routed here.
    pub cas_ok: u64,
    /// `cas` version conflicts routed here.
    pub cas_conflicts: u64,
    /// Successful `touch`/`set_ttl` calls routed here.
    pub touches: u64,
    /// Expired items observed (lazy-expiry misses) or reclaimed here.
    pub expired: u64,
}

impl ShardStats {
    /// Accumulate another shard's counters.
    pub fn add(&mut self, other: &ShardStats) {
        self.items += other.items;
        self.sets += other.sets;
        self.deletes += other.deletes;
        self.evictions += other.evictions;
        self.mget_keys += other.mget_keys;
        self.mget_hits += other.mget_hits;
        self.cas_ok += other.cas_ok;
        self.cas_conflicts += other.cas_conflicts;
        self.touches += other.touches;
        self.expired += other.expired;
    }
}

#[derive(Default)]
struct ShardCounters {
    sets: AtomicU64,
    deletes: AtomicU64,
    evictions: AtomicU64,
    mget_keys: AtomicU64,
    mget_hits: AtomicU64,
    cas_ok: AtomicU64,
    cas_conflicts: AtomicU64,
    touches: AtomicU64,
    expired: AtomicU64,
}

struct Shard {
    slab: SlabAllocator,
    items: ItemTable,
    index: Box<dyn HashIndex>,
    clock: Clock,
}

// Compile-time proof that Shard is Send + Sync — the precondition for the
// manual ShardSlot impls below (which only *reorganize* what RwLock<Shard>
// provided before, they don't weaken it).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Shard>();
};

/// One shard: its state, lock, seqlock version counter, and counters.
///
/// The shard state sits in an `UnsafeCell` beside a `RwLock<()>` rather
/// than inside a `RwLock<Shard>` so the optimistic read path can reach it
/// *without* touching the lock word (the whole point of DESIGN.md §11 —
/// no shared-state writes on reads). The lock still carries exactly the
/// old access discipline via [`ShardSlot::read`]/[`ShardSlot::write`];
/// [`ShardSlot::racy`] is the one doorway around it, handing out a
/// [`RacyShard`] whose accessors are only trustworthy under the seqlock
/// validation protocol.
struct ShardSlot {
    /// Even/odd shard version: odd while a writer holds the write lock.
    seq: SeqCount,
    lock: RwLock<()>,
    shard: UnsafeCell<Shard>,
    counters: ShardCounters,
}

// SAFETY: `ShardSlot` recreates what `RwLock<Shard>` was (Shard is
// Send + Sync, proven above): all `&mut Shard` access goes through the
// write lock, all `&Shard` access through the read lock — except
// `racy()`, whose `RacyShard` reads racing memory only through atomic
// or volatile loads and whose callers follow the seqlock validation
// protocol before trusting any of it.
unsafe impl Send for ShardSlot {}
unsafe impl Sync for ShardSlot {}

struct ShardReadGuard<'a> {
    _g: parking_lot::RwLockReadGuard<'a, ()>,
    shard: &'a Shard,
}

impl Deref for ShardReadGuard<'_> {
    type Target = Shard;
    fn deref(&self) -> &Shard {
        self.shard
    }
}

struct ShardWriteGuard<'a> {
    // Declared first: drops first, so the version returns to even while
    // the write lock is still held (readers never see even + mid-mutation).
    _seq: SeqWriteGuard<'a>,
    _g: parking_lot::RwLockWriteGuard<'a, ()>,
    // A raw pointer, not `&'a mut Shard`: optimistic readers racily load
    // atomic/volatile words from the same shard while this guard is live,
    // and a live `&mut` would assert exclusivity over the whole `Shard`
    // for the guard's entire lifetime. Each deref materializes a
    // reference only for that call, mirroring [`RacyShard`] on the
    // reader side (crossbeam-seqlock discipline).
    shard: *mut Shard,
    _marker: PhantomData<&'a mut Shard>,
}

impl Deref for ShardWriteGuard<'_> {
    type Target = Shard;
    fn deref(&self) -> &Shard {
        // SAFETY: the exclusive lock (held for `'a`) keeps every other
        // lock holder out, so no `&mut` aliases this reference.
        unsafe { &*self.shard }
    }
}

impl DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Shard {
        // SAFETY: as above; `&mut self` keeps this guard from handing out
        // an overlapping `&Shard` of its own.
        unsafe { &mut *self.shard }
    }
}

impl ShardSlot {
    fn read(&self) -> ShardReadGuard<'_> {
        let g = self.lock.read();
        // SAFETY: the shared lock excludes writers (every `&mut` access
        // goes through `write`), so a shared borrow is sound.
        ShardReadGuard {
            _g: g,
            shard: unsafe { &*self.shard.get() },
        }
    }

    /// Exclusive access; marks the shard version odd for the duration so
    /// optimistic readers spin or fall back instead of reading
    /// mid-mutation state.
    fn write(&self) -> ShardWriteGuard<'_> {
        let g = self.lock.write();
        let seq = self.seq.begin_write();
        ShardWriteGuard {
            _seq: seq,
            _g: g,
            shard: self.shard.get(),
            _marker: PhantomData,
        }
    }

    /// Lock-free view for the optimistic read protocol. Safe to obtain —
    /// all the unsafety lives inside [`RacyShard`]'s narrow accessors,
    /// each of which reads racing memory only through atomic or volatile
    /// loads. Callers must still validate every conclusion against `seq`
    /// or a row word before acting on it (the seqlock protocol).
    fn racy(&self) -> RacyShard<'_> {
        RacyShard {
            shard: self.shard.get(),
            _slot: PhantomData,
        }
    }
}

/// A lock-free, by-value handle to a shard for optimistic readers.
///
/// Deliberately *not* `&Shard`: a shared reference would claim the whole
/// shard immutable while a writer holding [`ShardSlot::write`] mutates it
/// — a data race and `&`/`&mut` aliasing violation even if the read
/// results are later discarded. Instead this wraps the raw pointer and
/// exposes only the handful of operations the optimistic protocol needs;
/// each materializes the narrowest reference for the duration of one call,
/// and every byte those calls read from memory a writer may be rewriting
/// travels through an atomic load ([`HashIndex::lookup_batch_optimistic`]
/// on an [`HashIndex::optimistic_probe_safe`] index, [`ItemTable`] row
/// words, CLOCK bits) or a volatile copy (slab chunk bytes via
/// [`read_item_racy`]) — the same de-facto-tolerated discipline as
/// crossbeam's seqlock. None of these reads are torn-proof; the caller's
/// seq/row-word validation is what turns them into trustworthy results.
#[derive(Copy, Clone)]
struct RacyShard<'a> {
    shard: *const Shard,
    _slot: PhantomData<&'a ShardSlot>,
}

impl RacyShard<'_> {
    /// Racy batched index probe (atomic loads only; see
    /// [`HashIndex::lookup_batch_optimistic`]).
    #[inline(always)]
    fn lookup(&self, hashes: &[u32], out: &mut [u32], depth: usize) {
        // SAFETY: the reference lives for this call only; the probe reads
        // index storage exclusively through atomic loads per the
        // `optimistic_probe_safe` contract.
        let index = unsafe { &*(*self.shard).index };
        index.lookup_batch_optimistic(hashes, out, depth);
    }

    /// Atomic item-row word load ([`ItemTable::load_row`]).
    #[inline(always)]
    fn load_row(&self, item: u32) -> u64 {
        // SAFETY: call-scoped reference; row words live in a stable
        // `AtomicSegArray` and are only read atomically.
        unsafe { (*self.shard).items.load_row(item) }
    }

    /// Row-word revalidation ([`ItemTable::revalidate`]).
    #[inline(always)]
    fn revalidate(&self, item: u32, word: u64) -> bool {
        // SAFETY: as `load_row`.
        unsafe { (*self.shard).items.revalidate(item, word) }
    }

    /// Racy expiry-metadata load ([`ItemTable::expires_at`]). Only
    /// trustworthy when the row word loaded *before* this call still
    /// revalidates afterwards — the register order (metadata before the
    /// row publish) plus the generation bump make an unchanged word prove
    /// the metadata belongs to that exact registration.
    #[inline(always)]
    fn expires_at(&self, item: u32) -> u64 {
        // SAFETY: as `load_row`; expiry words live in a stable
        // `AtomicSegArray` and are only read atomically.
        unsafe { (*self.shard).items.expires_at(item) }
    }

    /// Prefetch an item row's cache line ([`ItemTable::prefetch`]).
    #[inline(always)]
    fn prefetch_row(&self, item: u32) {
        // SAFETY: as `load_row`; a prefetch hint reads nothing.
        unsafe { (*self.shard).items.prefetch(item) }
    }

    /// Volatile copy-out of an item's leading bytes
    /// ([`read_item_racy`]); `false` if `r` is bogus (torn row read).
    #[inline(always)]
    fn read_item(&self, r: SlabRef, buf: &mut Vec<u8>) -> bool {
        // SAFETY: call-scoped reference; chunk bytes are copied with
        // volatile loads from pages that are never freed or moved.
        unsafe { read_item_racy(&(*self.shard).slab, r, buf) }
    }

    /// Atomic CLOCK touch ([`Clock::touch`]) — the one shared-state write
    /// the optimistic path performs.
    #[inline(always)]
    fn touch(&self, item: u32) {
        // SAFETY: call-scoped reference; the bitmap is atomic and stable.
        unsafe { (*self.shard).clock.touch(item) }
    }

    /// Optimistic AMAC stage 2: load candidate `cand`'s row word (its
    /// line made warm by an earlier [`RacyShard::prefetch_row`]) and
    /// request the chunk's leading cache line, so the full-key compare
    /// `G` iterations later reads a warm line. The racy counterpart of
    /// [`Shard::resolve_and_prefetch`].
    #[inline(always)]
    fn stage_word(&self, cand: u32) -> u64 {
        if cand == NO_ITEM {
            return 0;
        }
        let word = self.load_row(cand);
        if let Some(r) = decode_row(word) {
            // SAFETY: call-scoped reference; a prefetch hint reads
            // nothing, and chunk addresses come from stable metadata.
            unsafe { (*self.shard).slab.prefetch(r) };
        }
        word
    }
}

/// Counters for the optimistic read path (all modes; zero under
/// [`ReadMode::Locked`]). Snapshot via [`KvStore::optimistic_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OptimisticStats {
    /// Optimistic passes started (a retry starts a new pass).
    pub attempts: u64,
    /// Passes that validated and committed their results.
    pub commits: u64,
    /// Passes rolled back for a retry after failed validation.
    pub retries: u64,
    /// Per-key locked collision assists taken inside optimistic passes.
    pub assists: u64,
    /// Reads that gave up on the optimistic path (writer active or both
    /// attempts invalidated) and ran the locked path instead.
    pub fallbacks: u64,
}

/// Internal counters: the hot commit path pays exactly one RMW
/// (`commits`); everything else is bumped only on the cold
/// retry/abort/assist edges, and `attempts` is *derived* in the snapshot
/// (`commits + retries + aborts` — every started pass ends in exactly one
/// of those three).
#[derive(Default)]
struct OptimisticCounters {
    commits: AtomicU64,
    retries: AtomicU64,
    /// Started passes abandoned without a retry (e.g. a full-key
    /// mismatch that `get` hands to the locked collision slow path).
    aborts: AtomicU64,
    assists: AtomicU64,
    fallbacks: AtomicU64,
}

/// The sharded key-value store. Reads (`get`/`mget`) take a shared lock on
/// each shard they probe (one at a time) — or, under
/// [`ReadMode::Optimistic`], no lock at all (seqlock validation, DESIGN.md
/// §11) — and run concurrently across server workers; writes
/// (`set`/`delete`) serialize only within their key's shard.
pub struct KvStore {
    shards: Vec<ShardSlot>,
    shard_mul: u32,
    shard_shift: u32,
    shard_mask: usize,
    /// Multi-Get prefetch look-ahead `G` (0 = disabled). Atomic so bench
    /// sweeps can vary it on a live, populated store.
    prefetch_depth: AtomicUsize,
    /// Current [`ReadMode`] as a `u8` (0 = locked, 1 = optimistic); atomic
    /// so sweeps can flip it on a live store.
    read_mode: AtomicU8,
    /// Test/bench offset added to the coarse TTL clock (seconds); lets
    /// deterministic suites expire items without sleeping.
    time_offset: AtomicU64,
    /// Whether every shard's index supports racy probes; if not, the
    /// optimistic mode silently degrades to locked.
    optimistic_safe: bool,
    optimistic: OptimisticCounters,
    name: &'static str,
    /// Test-only writer pause point: called by `set` after the
    /// replace-delete, while the write lock is held and the shard version
    /// is odd. Lets the torn-read oracle hold a writer mid-mutation.
    #[cfg(any(test, feature = "torture"))]
    torture_set_pause: parking_lot::Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("index", &self.name)
            .field("shards", &self.shards.len())
            .field("items", &self.len())
            .finish()
    }
}

impl KvStore {
    /// Create a classic single-shard store over the given hash index.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards > 1` — a multi-shard store needs one index
    /// per shard; use [`KvStore::with_shards`].
    pub fn new(index: Box<dyn HashIndex>, config: StoreConfig) -> Self {
        assert!(
            config.shards <= 1,
            "KvStore::new builds a single shard; use KvStore::with_shards for {} shards",
            config.shards
        );
        let mut index = Some(index);
        Self::with_shards(
            StoreConfig {
                shards: 1,
                ..config
            },
            move |_| index.take().expect("single shard"),
        )
    }

    /// Create a store with `config.shards` shards (rounded up to a power
    /// of two), calling `make_index` once per shard with the per-shard
    /// item capacity.
    pub fn with_shards(
        config: StoreConfig,
        mut make_index: impl FnMut(usize) -> Box<dyn HashIndex>,
    ) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let per_capacity = config.capacity_items.div_ceil(n);
        let per_budget = (config.memory_budget / n).max(1 << 20);
        let shards: Vec<ShardSlot> = (0..n)
            .map(|_| ShardSlot {
                seq: SeqCount::new(),
                lock: RwLock::new(()),
                shard: UnsafeCell::new(Shard {
                    slab: SlabAllocator::new(per_budget),
                    items: ItemTable::new(),
                    index: make_index(per_capacity),
                    clock: Clock::new(),
                }),
                counters: ShardCounters::default(),
            })
            .collect();
        let (name, optimistic_safe) = {
            let g = shards[0].read();
            (g.index.name(), g.index.optimistic_probe_safe())
        };
        let log2 = n.trailing_zeros();
        KvStore {
            shards,
            shard_mul: SHARD_MUL,
            shard_shift: (32 - log2).clamp(1, 31),
            shard_mask: n - 1,
            prefetch_depth: AtomicUsize::new(
                config.prefetch_depth.unwrap_or(DEFAULT_PREFETCH_DEPTH),
            ),
            read_mode: AtomicU8::new(config.read_mode as u8),
            time_offset: AtomicU64::new(0),
            optimistic_safe,
            optimistic: OptimisticCounters::default(),
            name,
            #[cfg(any(test, feature = "torture"))]
            torture_set_pause: parking_lot::Mutex::new(None),
        }
    }

    /// The current reader synchronization mode.
    pub fn read_mode(&self) -> ReadMode {
        match self.read_mode.load(Ordering::Relaxed) {
            0 => ReadMode::Locked,
            _ => ReadMode::Optimistic,
        }
    }

    /// Change the reader synchronization mode at runtime; the
    /// `kvs-readscale-sweep` experiment uses this to compare the two
    /// paths on one populated store.
    ///
    /// On a quiescent store the two modes return byte-identical results
    /// (proved by `tests/read_mode_differential.rs`). Under concurrent
    /// writers they differ in one visible way: each key a batched `mget`
    /// returns is still individually linearizable, but an optimistic
    /// batch is **not** a shard-atomic snapshot — a writer may commit
    /// between two hits of one batch, whereas the locked pass holds the
    /// shard lock across its whole slice (see DESIGN.md §11).
    pub fn set_read_mode(&self, mode: ReadMode) {
        self.read_mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Snapshot of the optimistic read path counters.
    pub fn optimistic_stats(&self) -> OptimisticStats {
        let commits = self.optimistic.commits.load(Ordering::Relaxed);
        let retries = self.optimistic.retries.load(Ordering::Relaxed);
        let aborts = self.optimistic.aborts.load(Ordering::Relaxed);
        OptimisticStats {
            attempts: commits + retries + aborts,
            commits,
            retries,
            assists: self.optimistic.assists.load(Ordering::Relaxed),
            fallbacks: self.optimistic.fallbacks.load(Ordering::Relaxed),
        }
    }

    #[inline(always)]
    fn use_optimistic(&self) -> bool {
        self.optimistic_safe && self.read_mode() == ReadMode::Optimistic
    }

    /// Whether this store's index backend declares its probes safe for
    /// lock-free optimistic reads ([`HashIndex::optimistic_probe_safe`]).
    /// When false, `ReadMode::Optimistic` silently behaves like `Locked`.
    pub fn optimistic_capable(&self) -> bool {
        self.optimistic_safe
    }

    /// Install (or clear) the torn-read torture hook: `set` calls it after
    /// deleting a replaced key's old item, with the write lock held and
    /// the shard version odd. A hook that blocks holds the writer
    /// mid-mutation — the adversarial window the seqlock protocol must
    /// make invisible to readers. Test/`torture`-feature builds only.
    ///
    /// Note: the hook runs under an internal mutex, so don't call
    /// `set_torture_set_pause` again while a hooked `set` is paused.
    #[cfg(any(test, feature = "torture"))]
    #[doc(hidden)]
    pub fn set_torture_set_pause(&self, hook: Option<Box<dyn Fn() + Send + Sync>>) {
        *self.torture_set_pause.lock() = hook;
    }

    /// The current Multi-Get prefetch look-ahead `G` (0 = disabled).
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth.load(Ordering::Relaxed)
    }

    /// Change the Multi-Get prefetch look-ahead at runtime. Purely a
    /// performance knob — results are bit-identical for every `depth`
    /// (proved by `tests/mget_differential.rs`); the `kvs-prefetch-sweep`
    /// experiment uses this to sweep `G` over one populated store.
    pub fn set_prefetch_depth(&self, depth: usize) {
        self.prefetch_depth.store(depth, Ordering::Relaxed);
    }

    /// The backing index's name (for reports).
    pub fn index_name(&self) -> &'static str {
        self.name
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `(mul, shift, mask)` routing parameters (for placement tests).
    pub fn shard_params(&self) -> (u32, u32, usize) {
        (self.shard_mul, self.shard_shift, self.shard_mask)
    }

    /// The shard index `key` routes to.
    #[inline(always)]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_for_hash(hash_key(key))
    }

    #[inline(always)]
    fn shard_for_hash(&self, hash: u32) -> usize {
        shard_route(hash, self.shard_mul, self.shard_shift, self.shard_mask)
    }

    /// Number of live items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().items.len()).sum()
    }

    /// Live item count per shard (balance reporting).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().items.len()).collect()
    }

    /// Per-shard counter snapshots.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                items: s.read().items.len(),
                sets: s.counters.sets.load(Ordering::Relaxed),
                deletes: s.counters.deletes.load(Ordering::Relaxed),
                evictions: s.counters.evictions.load(Ordering::Relaxed),
                mget_keys: s.counters.mget_keys.load(Ordering::Relaxed),
                mget_hits: s.counters.mget_hits.load(Ordering::Relaxed),
                cas_ok: s.counters.cas_ok.load(Ordering::Relaxed),
                cas_conflicts: s.counters.cas_conflicts.load(Ordering::Relaxed),
                touches: s.counters.touches.load(Ordering::Relaxed),
                expired: s.counters.expired.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Counters summed over all shards.
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in self.shard_stats() {
            t.add(&s);
        }
        t
    }

    /// `true` when the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's current TTL-clock second (coarse monotonic seconds
    /// since process start, plus any [`KvStore::advance_time`] offset).
    #[inline]
    pub fn now_secs(&self) -> u64 {
        coarse_now() + self.time_offset.load(Ordering::Relaxed)
    }

    /// Advance the store's TTL clock by `secs` — a test/bench hook so
    /// deterministic suites can expire items without wall-clock sleeps.
    /// Monotonic only (the clock never rewinds).
    pub fn advance_time(&self, secs: u64) {
        self.time_offset.fetch_add(secs, Ordering::Relaxed);
    }

    /// Insert or replace `key → value`, locking only the key's shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectTooLarge`] for oversized objects;
    /// [`StoreError::OutOfMemory`] / [`StoreError::IndexFull`] when
    /// eviction (within this shard) cannot make room.
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.set_v(key, value, 0).map(|_| ())
    }

    /// [`KvStore::set`] with a TTL, returning the key's new version.
    ///
    /// `ttl_secs == 0` means the item never expires; otherwise it expires
    /// `ttl_secs` store-clock seconds from now and is lazily treated as
    /// absent by every read path afterwards (DESIGN.md §13). The returned
    /// version is 1 for a fresh (or expired-and-replaced) key and
    /// `previous + 1` when a live item was replaced.
    ///
    /// # Errors
    ///
    /// As [`KvStore::set`].
    pub fn set_v(&self, key: &[u8], value: &[u8], ttl_secs: u32) -> Result<u64, StoreError> {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let mut g = slot.write();
        self.set_in_guard(slot, &mut g, hash, key, value, ttl_secs)
    }

    /// The per-key insert body shared by [`KvStore::set`] and
    /// [`KvStore::set_multi`]: replace, allocate (evicting on pressure),
    /// register, index (evicting on pressure), admit. The caller holds the
    /// shard's write guard, so a multi-key batch amortizes one lock
    /// acquisition and one seqlock write session over the whole group.
    #[allow(clippy::too_many_arguments)]
    fn set_in_guard(
        &self,
        slot: &ShardSlot,
        g: &mut ShardWriteGuard<'_>,
        hash: u32,
        key: &[u8],
        value: &[u8],
        ttl_secs: u32,
    ) -> Result<u64, StoreError> {
        let now = self.now_secs();
        // Replace semantics: drop any existing item with this exact key.
        // The version chain continues across a live replace; an expired
        // item is indistinguishable from an absent one, so its chain
        // restarts at 1 (exactly what a reader that already saw the miss
        // would expect).
        let mut version = 1u64;
        if let Some(existing) = g.find_verified(hash, key) {
            if !is_expired(g.items.expires_at(existing), now) {
                version = g.items.version(existing).wrapping_add(1);
            }
            g.delete_item(hash, existing);
        }
        // Torn-read oracle pause point: old item gone, new one not yet
        // written — a reader that saw this intermediate state would miss
        // the key entirely.
        #[cfg(any(test, feature = "torture"))]
        if let Some(hook) = self.torture_set_pause.lock().as_ref() {
            hook();
        }
        // Allocate, evicting on pressure.
        let slab_ref = loop {
            match write_item(&mut g.slab, key, value) {
                Ok(r) => break r,
                Err(SlabError::ObjectTooLarge { .. }) => return Err(StoreError::ObjectTooLarge),
                Err(SlabError::OutOfMemory) => match g.evict_one(now) {
                    Some(expired) => Self::count_evict(slot, expired),
                    None => return Err(StoreError::OutOfMemory),
                },
            }
        };
        let expires_at = if ttl_secs == 0 {
            0
        } else {
            now + u64::from(ttl_secs)
        };
        let item = g.items.register_versioned(slab_ref, version, expires_at);
        // Index insertion, evicting on pressure.
        loop {
            match g.index.insert(hash, item) {
                Ok(()) => break,
                Err(IndexError::Full) => match g.evict_one(now) {
                    Some(expired) => Self::count_evict(slot, expired),
                    None => {
                        // Roll back the slab registration.
                        let r = g.items.unregister(item).expect("just registered");
                        g.slab.free(r);
                        return Err(StoreError::IndexFull);
                    }
                },
            }
        }
        g.clock.admit(item);
        slot.counters.sets.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Attribute one [`Shard::evict_one`] removal to the right counter:
    /// reclaiming an expired item is not a capacity eviction.
    #[inline]
    fn count_evict(slot: &ShardSlot, expired: bool) {
        if expired {
            slot.counters.expired.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The batched Multi-Set pipeline (DESIGN.md §12) — the write-path
    /// counterpart to [`KvStore::mget`]:
    ///
    /// 1. **Pre-processing** — hash every key with the interleaved FNV
    ///    kernel and partition the batch by shard.
    /// 2. **Candidate probe** — per shard, under **one** write lock and
    ///    seqlock write session for the whole group, a batched
    ///    group-prefetched lookup warms the index buckets and stages the
    ///    replacement candidates' item rows.
    /// 3. **Insert** — each key runs the same replace/allocate/index body
    ///    as [`KvStore::set`], with key `j + G`'s buckets and candidate
    ///    rows prefetched while key `j` inserts.
    ///
    /// Keys in one batch apply in request order, so duplicate keys resolve
    /// later-wins exactly as the equivalent sequence of `set` calls would,
    /// and eviction decisions (CLOCK victims) match the sequential path.
    /// Per-key outcomes land in `batch.results()`; a failed key does not
    /// stop the rest of the batch.
    ///
    /// Holds at most one shard lock at a time, in shard order — same lock
    /// hierarchy as `mget`, so it cannot deadlock against readers or other
    /// batch writers.
    pub fn set_multi(
        &self,
        pairs: &[(&[u8], &[u8])],
        batch: &mut SetMultiBatch,
    ) -> SetMultiOutcome {
        self.set_multi_ttl(pairs, 0, batch)
    }

    /// [`KvStore::set_multi`] with one TTL applied to every pair in the
    /// batch (`0` = never expires) — the store half of the `SetMultiEx`
    /// wire verb.
    pub fn set_multi_ttl(
        &self,
        pairs: &[(&[u8], &[u8])],
        ttl_secs: u32,
        batch: &mut SetMultiBatch,
    ) -> SetMultiOutcome {
        // Phase 1: pre-processing — hash (eight interleaved FNV chains per
        // group) and shard partition.
        let t0 = Instant::now();
        batch.results.clear();
        batch.results.resize(pairs.len(), Ok(()));
        let keys: Vec<&[u8]> = pairs.iter().map(|&(k, _)| k).collect();
        let mut hashes = std::mem::take(&mut batch.hashes);
        hashes.clear();
        hash_keys_into(&keys, &mut hashes);
        let single = self.shards.len() == 1;
        let mut per_shard = std::mem::take(&mut batch.per_shard);
        if !single {
            per_shard.resize_with(self.shards.len(), Vec::new);
            for bucket in per_shard.iter_mut() {
                bucket.clear();
            }
            for (i, &h) in hashes.iter().enumerate() {
                per_shard[self.shard_for_hash(h)].push(i as u32);
            }
        }
        let t1 = Instant::now();

        let depth = self.prefetch_depth.load(Ordering::Relaxed);
        let mut sub_hashes = std::mem::take(&mut batch.sub_hashes);
        let mut candidates = std::mem::take(&mut batch.candidates);
        let mut results = std::mem::take(&mut batch.results);
        let mut stored = 0usize;
        let mut lookup_ns = 0u64;
        let mut post_ns = 0u64;
        for (s, slot) in self.shards.iter().enumerate() {
            let n_sub = if single {
                pairs.len()
            } else {
                per_shard[s].len()
            };
            if n_sub == 0 {
                continue;
            }
            let smap = if single {
                SlotMap::Identity
            } else {
                SlotMap::Map(&per_shard[s])
            };
            let shard_hashes: &[u32] = if single {
                &hashes
            } else {
                sub_hashes.clear();
                sub_hashes.extend(per_shard[s].iter().map(|&i| hashes[i as usize]));
                &sub_hashes
            };
            // Phase 2: one exclusive lock + seqlock write session for the
            // whole group; the batched probe warms this shard's buckets
            // and stages replacement candidates. The candidates are
            // *hints only* — an earlier insert in this batch can change
            // the truth (duplicate keys) — so Phase 3 re-verifies each key
            // under the same guard.
            let tl0 = Instant::now();
            let mut g = slot.write();
            candidates.clear();
            candidates.resize(n_sub, NO_ITEM);
            g.index
                .lookup_batch_prefetched(shard_hashes, &mut candidates, depth);
            if depth > 0 {
                for &cand in candidates.iter().take(2 * depth) {
                    g.items.prefetch(cand);
                }
            }
            let tl1 = Instant::now();
            // Phase 3: inserts, with key j+G's index buckets and candidate
            // item rows requested while key j runs.
            for j in 0..n_sub {
                if depth > 0 {
                    if let Some(&ahead) = candidates.get(j + 2 * depth) {
                        g.items.prefetch(ahead);
                    }
                    if let Some(&h_ahead) = shard_hashes.get(j + depth) {
                        g.index.prefetch_hash(h_ahead);
                    }
                }
                let i = smap.get(j);
                let (key, value) = pairs[i];
                let r = self
                    .set_in_guard(slot, &mut g, shard_hashes[j], key, value, ttl_secs)
                    .map(|_| ());
                if r.is_ok() {
                    stored += 1;
                }
                results[i] = r;
            }
            let tl2 = Instant::now();
            drop(g);
            lookup_ns += (tl1 - tl0).as_nanos() as u64;
            post_ns += (tl2 - tl1).as_nanos() as u64;
        }
        batch.hashes = hashes;
        batch.per_shard = per_shard;
        batch.sub_hashes = sub_hashes;
        batch.candidates = candidates;
        batch.results = results;

        SetMultiOutcome {
            stored,
            phases: PhaseNanos {
                pre: (t1 - t0).as_nanos() as u64,
                lookup: lookup_ns,
                post: post_ns,
            },
        }
    }

    /// Look up a single key.
    ///
    /// A direct path over the key's shard — same probe, verification,
    /// fallback, CLOCK, and counter semantics as a one-key [`KvStore::mget`]
    /// but without the response-buffer machinery (an `MGetResponse` carries
    /// hash/partition/candidate scratch vectors that a single-key call
    /// would allocate and throw away).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        if self.use_optimistic() {
            if let Some(decided) = self.get_optimistic(slot, hash, key) {
                return decided;
            }
        }
        self.get_locked(slot, hash, key)
    }

    /// Lock-free single-key lookup under the seqlock protocol (DESIGN.md
    /// §11). Returns `Some(result)` when the read validated, `None` when
    /// the caller must fall back to [`KvStore::get_locked`]: a writer was
    /// active, both attempts were invalidated, or the probe found a
    /// full-key mismatch (possible tag collision — `lookup_all` is not
    /// racy-safe on every backend, so collisions resolve under the lock).
    fn get_optimistic(&self, slot: &ShardSlot, hash: u32, key: &[u8]) -> Option<Option<Vec<u8>>> {
        // Every racing byte below travels through RacyShard's atomic or
        // volatile accessors, and every outcome is validated before being
        // returned (seq for misses, the row word for hits).
        let racy = slot.racy();
        let mut buf = Vec::new();
        for _ in 0..2 {
            let Some(seq) = slot.seq.read_begin() else {
                break; // writer active: the lock queue is the fast path now
            };
            let mut cand = [NO_ITEM];
            racy.lookup(std::slice::from_ref(&hash), &mut cand, 0);
            let cand = cand[0];
            let word = if cand == NO_ITEM {
                0
            } else {
                racy.load_row(cand)
            };
            match decode_row(word) {
                None => {
                    // Miss (no candidate, or a dying row): only believable
                    // if no writer ran while we probed.
                    if slot.seq.validate(seq) {
                        self.optimistic.commits.fetch_add(1, Ordering::Relaxed);
                        slot.counters.mget_keys.fetch_add(1, Ordering::Relaxed);
                        return Some(None);
                    }
                }
                Some(r) => {
                    let verified = racy.read_item(r, &mut buf)
                        && item_decode_checked(&buf).is_some_and(|(k, _)| k == key);
                    if verified {
                        // Racy metadata load *before* the row recheck: an
                        // unchanged word then proves the expiry belonged
                        // to exactly this registration (DESIGN.md §13).
                        let expires_at = racy.expires_at(cand);
                        // A verified hit stands on its row word alone: the
                        // word unchanged across the copy means the item
                        // stayed live in this exact chunk, and live chunk
                        // bytes are immutable (replace = delete + insert).
                        if racy.revalidate(cand, word) {
                            if is_expired(expires_at, self.now_secs()) {
                                // Lazy expiry: a validated-but-expired hit
                                // is a definitive miss — no seq needed.
                                self.optimistic.commits.fetch_add(1, Ordering::Relaxed);
                                slot.counters.mget_keys.fetch_add(1, Ordering::Relaxed);
                                slot.counters.expired.fetch_add(1, Ordering::Relaxed);
                                return Some(None);
                            }
                            let (_, v) = item_decode_checked(&buf).expect("just decoded");
                            let value = v.to_vec();
                            racy.touch(cand);
                            self.optimistic.commits.fetch_add(1, Ordering::Relaxed);
                            slot.counters.mget_keys.fetch_add(1, Ordering::Relaxed);
                            slot.counters.mget_hits.fetch_add(1, Ordering::Relaxed);
                            return Some(Some(value));
                        }
                    } else if slot.seq.validate(seq) {
                        // Genuine full-key mismatch (tag collision)
                        // or torn-looking bytes under a stable seq:
                        // resolve under the lock.
                        self.optimistic.aborts.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            self.optimistic.retries.fetch_add(1, Ordering::Relaxed);
        }
        self.optimistic.fallbacks.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn get_locked(&self, slot: &ShardSlot, hash: u32, key: &[u8]) -> Option<Vec<u8>> {
        let g = slot.read();
        let mut cand = [NO_ITEM];
        g.index.lookup_batch(std::slice::from_ref(&hash), &mut cand);
        let cand = cand[0];
        let mut resolved = None;
        if cand != NO_ITEM {
            if let Some(r) = g.items.get(cand) {
                if item_key(g.slab.chunk(r)) == key {
                    resolved = Some((cand, r));
                }
            }
            if resolved.is_none() {
                // Tag/hash collision: scan all candidates (MemC3 slow path).
                let mut fallback = Vec::new();
                g.index.lookup_all(hash, &mut fallback);
                for &c in &fallback {
                    if let Some(r) = g.items.get(c) {
                        if item_key(g.slab.chunk(r)) == key {
                            resolved = Some((c, r));
                            break;
                        }
                    }
                }
            }
        }
        slot.counters.mget_keys.fetch_add(1, Ordering::Relaxed);
        // Lazy expiry: a resolved but expired item reads as a miss. The
        // shared lock cannot reclaim it; writers and the eviction path do.
        if let Some((item, _)) = resolved {
            if is_expired(g.items.expires_at(item), self.now_secs()) {
                slot.counters.expired.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        resolved.map(|(item, r)| {
            g.clock.touch(item);
            slot.counters.mget_hits.fetch_add(1, Ordering::Relaxed);
            item_value(g.slab.chunk(r)).to_vec()
        })
    }

    /// Delete a key; returns `true` if it existed (and had not expired).
    ///
    /// Deleting a lazily-expired item reclaims its storage but reports
    /// `false` — on the command surface an expired item *is* absent.
    pub fn delete(&self, key: &[u8]) -> bool {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let mut g = slot.write();
        match g.find_verified(hash, key) {
            Some(item) => {
                let expired = is_expired(g.items.expires_at(item), self.now_secs());
                g.delete_item(hash, item);
                if expired {
                    slot.counters.expired.fetch_add(1, Ordering::Relaxed);
                } else {
                    slot.counters.deletes.fetch_add(1, Ordering::Relaxed);
                }
                !expired
            }
            None => false,
        }
    }

    /// Compare-and-swap: replace `key`'s value (with `ttl_secs`, 0 = no
    /// expiry) only if its current version equals `expected_version`.
    ///
    /// Linearizes at the shard write lock: the version read, compare, and
    /// replace happen in one critical section, so for every key version
    /// exactly one racing `cas` can observe it and win (DESIGN.md §13).
    /// Expired items count as absent (their storage is reclaimed en
    /// passant).
    ///
    /// # Errors
    ///
    /// As [`KvStore::set`] — allocation/index failures abort the swap
    /// without consuming the version.
    pub fn cas(
        &self,
        key: &[u8],
        expected_version: u64,
        value: &[u8],
        ttl_secs: u32,
    ) -> Result<CasOutcome, StoreError> {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let mut g = slot.write();
        let now = self.now_secs();
        match g.find_verified(hash, key) {
            Some(item) => {
                if is_expired(g.items.expires_at(item), now) {
                    // Reclaim and report absent, like `delete`.
                    g.delete_item(hash, item);
                    slot.counters.expired.fetch_add(1, Ordering::Relaxed);
                    return Ok(CasOutcome::NotFound);
                }
                let current = g.items.version(item);
                if current != expected_version {
                    slot.counters.cas_conflicts.fetch_add(1, Ordering::Relaxed);
                    return Ok(CasOutcome::Conflict(current));
                }
                let new = self.set_in_guard(slot, &mut g, hash, key, value, ttl_secs)?;
                slot.counters.cas_ok.fetch_add(1, Ordering::Relaxed);
                Ok(CasOutcome::Stored(new))
            }
            None => Ok(CasOutcome::NotFound),
        }
    }

    /// Reset `key`'s TTL (`0` = never expires) without touching its value
    /// or version — the `touch` verb. Returns `true` if the key existed
    /// (and had not already expired).
    pub fn set_ttl(&self, key: &[u8], ttl_secs: u32) -> bool {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let g = slot.write();
        let now = self.now_secs();
        match g.find_verified(hash, key) {
            Some(item) => {
                if is_expired(g.items.expires_at(item), now) {
                    return false;
                }
                let expires_at = if ttl_secs == 0 {
                    0
                } else {
                    now + u64::from(ttl_secs)
                };
                g.items.set_expires_at(item, expires_at);
                slot.counters.touches.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Alias for [`KvStore::set_ttl`] under its memcached verb name.
    pub fn touch(&self, key: &[u8], ttl_secs: u32) -> bool {
        self.set_ttl(key, ttl_secs)
    }

    /// Look up a single key together with its current version (for a
    /// subsequent [`KvStore::cas`]). Runs under the shard's shared lock
    /// in every read mode — the version must be read in the same critical
    /// section that resolved the item.
    pub fn get_v(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let g = slot.read();
        let mut cand = [NO_ITEM];
        g.index.lookup_batch(std::slice::from_ref(&hash), &mut cand);
        let cand = cand[0];
        let mut resolved = None;
        if cand != NO_ITEM {
            if let Some(r) = g.items.get(cand) {
                if item_key(g.slab.chunk(r)) == key {
                    resolved = Some((cand, r));
                }
            }
            if resolved.is_none() {
                let mut fallback = Vec::new();
                g.index.lookup_all(hash, &mut fallback);
                for &c in &fallback {
                    if let Some(r) = g.items.get(c) {
                        if item_key(g.slab.chunk(r)) == key {
                            resolved = Some((c, r));
                            break;
                        }
                    }
                }
            }
        }
        slot.counters.mget_keys.fetch_add(1, Ordering::Relaxed);
        let (item, r) = resolved?;
        if is_expired(g.items.expires_at(item), self.now_secs()) {
            slot.counters.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        g.clock.touch(item);
        slot.counters.mget_hits.fetch_add(1, Ordering::Relaxed);
        Some((item_value(g.slab.chunk(r)).to_vec(), g.items.version(item)))
    }

    /// The batched Multi-Get pipeline with per-phase timing.
    ///
    /// The batch is partitioned by shard during pre-processing; each
    /// non-empty shard then runs one batched lookup + post-processing pass
    /// under its shared lock. At most one shard lock is held at a time.
    ///
    /// `resp` is reset and refilled; reusing one buffer across calls avoids
    /// per-request allocation, as a real server does.
    pub fn mget(&self, keys: &[&[u8]], resp: &mut MGetResponse) -> MGetOutcome {
        // Phase 1: pre-processing — parse batch, hash every key (eight
        // interleaved FNV chains per group, SIMD for fixed-width groups),
        // partition the batch by shard.
        let t0 = Instant::now();
        resp.reset(keys.len());
        let mut hashes = std::mem::take(&mut resp.hashes);
        hashes.clear();
        hash_keys_into(keys, &mut hashes);
        let single = self.shards.len() == 1;
        let mut per_shard = std::mem::take(&mut resp.per_shard);
        if !single {
            per_shard.resize_with(self.shards.len(), Vec::new);
            for bucket in per_shard.iter_mut() {
                bucket.clear();
            }
            for (i, &h) in hashes.iter().enumerate() {
                per_shard[self.shard_for_hash(h)].push(i as u32);
            }
        }
        let t1 = Instant::now();

        // Phases 2+3 per shard — under that shard's shared lock, or with
        // no lock at all when the optimistic read mode is on (each shard
        // pass still falls back to the locked helper if it can't
        // validate).
        let depth = self.prefetch_depth.load(Ordering::Relaxed);
        let use_opt = self.use_optimistic();
        let mut candidates = std::mem::take(&mut resp.candidates);
        let mut sub_hashes = std::mem::take(&mut resp.sub_hashes);
        let mut refs = std::mem::take(&mut resp.refs);
        let mut words = std::mem::take(&mut resp.words);
        let mut chunk_buf = std::mem::take(&mut resp.chunk_buf);
        let mut fallback: Vec<u32> = Vec::new();
        let mut found = 0usize;
        let mut lookup_ns = 0u64;
        let mut post_ns = 0u64;
        for (s, slot) in self.shards.iter().enumerate() {
            let n_sub = if single {
                keys.len()
            } else {
                per_shard[s].len()
            };
            if n_sub == 0 {
                continue;
            }
            let smap = if single {
                SlotMap::Identity
            } else {
                SlotMap::Map(&per_shard[s])
            };
            let shard_hashes: &[u32] = if single {
                &hashes
            } else {
                sub_hashes.clear();
                sub_hashes.extend(per_shard[s].iter().map(|&i| hashes[i as usize]));
                &sub_hashes
            };
            let committed = if use_opt {
                self.mget_shard_optimistic(
                    slot,
                    keys,
                    shard_hashes,
                    smap,
                    depth,
                    resp,
                    &mut candidates,
                    &mut words,
                    &mut chunk_buf,
                    &mut fallback,
                )
            } else {
                None
            };
            let (shard_found, l_ns, p_ns) = match committed {
                Some(t) => t,
                None => self.mget_shard_locked(
                    slot,
                    keys,
                    shard_hashes,
                    smap,
                    depth,
                    resp,
                    &mut candidates,
                    &mut refs,
                    &mut fallback,
                ),
            };
            found += shard_found as usize;
            lookup_ns += l_ns;
            post_ns += p_ns;
        }
        if !single {
            // Shard-grouped records -> request order (still Phase 3 work).
            let tf = Instant::now();
            resp.finalize_request_order();
            post_ns += tf.elapsed().as_nanos() as u64;
        }
        resp.hashes = hashes;
        resp.candidates = candidates;
        resp.per_shard = per_shard;
        resp.sub_hashes = sub_hashes;
        resp.refs = refs;
        resp.words = words;
        resp.chunk_buf = chunk_buf;

        MGetOutcome {
            found,
            phases: PhaseNanos {
                pre: (t1 - t0).as_nanos() as u64,
                lookup: lookup_ns,
                post: post_ns,
            },
        }
    }

    /// One shard's Phase 2+3 under its shared lock (the classic path).
    /// Returns `(keys found, lookup ns, post ns)`.
    ///
    /// Phase 2 is the hash-table lookup (the batched, SIMD-accelerable
    /// phase) over this shard's slice of the request, with bucket lines
    /// prefetched `depth` hashes ahead of each probe. Phase 3 verifies
    /// full keys, writes values into the wire buffer, and updates CLOCK;
    /// with a prefetch depth G it runs AMAC-style stages over the
    /// candidate list — candidate j's item-table row is requested 2G keys
    /// before its turn, its slab chunk G keys before (resolving the row
    /// the prefetch made warm), so both dependent misses overlap the
    /// verification of earlier keys. The shard lock is held throughout,
    /// so staged reads cannot go stale.
    #[allow(clippy::too_many_arguments)]
    fn mget_shard_locked(
        &self,
        slot: &ShardSlot,
        keys: &[&[u8]],
        shard_hashes: &[u32],
        smap: SlotMap<'_>,
        depth: usize,
        resp: &mut MGetResponse,
        candidates: &mut Vec<u32>,
        refs: &mut Vec<Option<SlabRef>>,
        fallback: &mut Vec<u32>,
    ) -> (u64, u64, u64) {
        let n_sub = shard_hashes.len();
        let now = self.now_secs();
        let g = slot.read();

        let tl0 = Instant::now();
        candidates.clear();
        candidates.resize(n_sub, NO_ITEM);
        g.index
            .lookup_batch_prefetched(shard_hashes, candidates, depth);
        let tl1 = Instant::now();

        let mut shard_found = 0u64;
        let mut shard_expired = 0u64;
        if depth > 0 {
            refs.clear();
            refs.resize(n_sub, None);
            for &cand in candidates.iter().take(2 * depth) {
                g.items.prefetch(cand);
            }
            for j in 0..n_sub.min(depth) {
                refs[j] = g.resolve_and_prefetch(candidates[j]);
            }
        }
        for j in 0..n_sub {
            if depth > 0 {
                if let Some(&ahead) = candidates.get(j + 2 * depth) {
                    g.items.prefetch(ahead);
                }
                if j + depth < n_sub {
                    refs[j + depth] = g.resolve_and_prefetch(candidates[j + depth]);
                }
            }
            let cand = candidates[j];
            let i = smap.get(j);
            let key = keys[i];
            let slab_ref = if depth > 0 {
                refs[j]
            } else if cand != NO_ITEM {
                g.items.get(cand)
            } else {
                None
            };
            let mut resolved = None;
            if let Some(r) = slab_ref {
                if item_key(g.slab.chunk(r)) == key {
                    resolved = Some((cand, r));
                }
            }
            if resolved.is_none() && cand != NO_ITEM {
                // Tag/hash collision: scan all candidates (MemC3 slow
                // path).
                fallback.clear();
                g.index.lookup_all(shard_hashes[j], fallback);
                for &c in fallback.iter() {
                    if let Some(r) = g.items.get(c) {
                        if item_key(g.slab.chunk(r)) == key {
                            resolved = Some((c, r));
                            break;
                        }
                    }
                }
            }
            // Lazy expiry: resolved-but-expired reads as a miss.
            if let Some((item, _)) = resolved {
                if is_expired(g.items.expires_at(item), now) {
                    shard_expired += 1;
                    resolved = None;
                }
            }
            if let Some((item, r)) = resolved {
                resp.push_hit(i, item_value(g.slab.chunk(r)));
                g.clock.touch(item);
                shard_found += 1;
            } else {
                resp.push_miss();
            }
        }
        let tl2 = Instant::now();
        drop(g);
        slot.counters
            .mget_keys
            .fetch_add(n_sub as u64, Ordering::Relaxed);
        slot.counters
            .mget_hits
            .fetch_add(shard_found, Ordering::Relaxed);
        slot.counters
            .expired
            .fetch_add(shard_expired, Ordering::Relaxed);
        (
            shard_found,
            (tl1 - tl0).as_nanos() as u64,
            (tl2 - tl1).as_nanos() as u64,
        )
    }

    /// One shard's Phase 2+3 under the seqlock protocol (DESIGN.md §11):
    /// no lock, no shared-state writes except atomic CLOCK bits. Returns
    /// `Some((found, lookup ns, post ns))` when a pass validated and
    /// committed, `None` when the caller must rerun the shard through
    /// [`KvStore::mget_shard_locked`].
    ///
    /// Validation is two-tier: each *hit* is verified by re-checking its
    /// item row word after the value bytes are copied (unchanged word ⟹
    /// the item stayed live in that exact chunk ⟹ the copy is one
    /// consistent value); *misses* and locked collision assists
    /// additionally require the shard version to be unchanged across the
    /// whole pass (`need_seq`), since "not found" can only be trusted if
    /// no writer raced the probe. A failed validation rolls the response
    /// back to its pre-pass marks and retries once.
    ///
    /// Keys resolve per-key linearizably, but a multi-key batch is not a
    /// shard-atomic snapshot the way the locked pass is — a writer may
    /// commit between two hits of one batch (each hit is still a value
    /// that was current when its row was read; see DESIGN.md §11).
    #[allow(clippy::too_many_arguments)]
    fn mget_shard_optimistic(
        &self,
        slot: &ShardSlot,
        keys: &[&[u8]],
        shard_hashes: &[u32],
        smap: SlotMap<'_>,
        depth: usize,
        resp: &mut MGetResponse,
        candidates: &mut Vec<u32>,
        words: &mut Vec<u64>,
        chunk_buf: &mut Vec<u8>,
        fallback: &mut Vec<u32>,
    ) -> Option<(u64, u64, u64)> {
        let n_sub = shard_hashes.len();
        let now = self.now_secs();
        // Same torn-tolerant access discipline as `get_optimistic`: every
        // racing byte goes through RacyShard's atomic/volatile accessors.
        let racy = slot.racy();
        for _attempt in 0..2 {
            let Some(seq) = slot.seq.read_begin() else {
                break; // writer active: run the shard locked
            };
            let mark_buf = resp.buf.len();
            let mark_bytes = resp.value_bytes;

            let tl0 = Instant::now();
            candidates.clear();
            candidates.resize(n_sub, NO_ITEM);
            racy.lookup(shard_hashes, candidates, depth);
            let tl1 = Instant::now();

            // The AMAC staging of the locked pass, restated over row
            // *words*: candidate j's row line is prefetched 2G keys ahead,
            // its word loaded (and chunk line prefetched) G keys ahead.
            // Loading the word early only *widens* the window the final
            // re-validation must cover — still correct, same stages warm.
            words.clear();
            words.resize(n_sub, 0);
            let mut need_seq = false;
            let mut torn = false;
            let mut shard_found = 0u64;
            let mut shard_expired = 0u64;
            let mut processed = 0usize;
            if depth > 0 {
                for &cand in candidates.iter().take(2 * depth) {
                    racy.prefetch_row(cand);
                }
                for j in 0..n_sub.min(depth) {
                    words[j] = racy.stage_word(candidates[j]);
                }
            }
            for j in 0..n_sub {
                if depth > 0 {
                    if let Some(&ahead) = candidates.get(j + 2 * depth) {
                        racy.prefetch_row(ahead);
                    }
                    if j + depth < n_sub {
                        words[j + depth] = racy.stage_word(candidates[j + depth]);
                    }
                }
                let cand = candidates[j];
                let i = smap.get(j);
                let key = keys[i];
                processed = j + 1;
                if cand == NO_ITEM {
                    resp.push_miss();
                    need_seq = true;
                    continue;
                }
                let word = if depth > 0 {
                    words[j]
                } else {
                    racy.load_row(cand)
                };
                let row = decode_row(word);
                let copied = row.is_some_and(|r| racy.read_item(r, chunk_buf));
                let value = if copied {
                    item_decode_checked(chunk_buf)
                        .filter(|(k, _)| *k == key)
                        .map(|(_, v)| v)
                } else {
                    None
                };
                match value {
                    Some(v) => {
                        // Racy expiry load before the row recheck, so an
                        // unchanged word vouches for it (DESIGN.md §13).
                        let expires_at = racy.expires_at(cand);
                        if !racy.revalidate(cand, word) {
                            torn = true;
                            break;
                        }
                        if is_expired(expires_at, now) {
                            // Validated-but-expired: a definitive lazy-
                            // expiry miss — positive evidence, no seq
                            // stability required.
                            resp.push_miss();
                            shard_expired += 1;
                        } else {
                            resp.push_hit(i, v);
                            racy.touch(cand);
                            shard_found += 1;
                        }
                    }
                    None if row.is_none() => {
                        // Dying/dead row behind a live-looking candidate:
                        // a miss, believable only under a stable seq.
                        resp.push_miss();
                        need_seq = true;
                    }
                    None => {
                        // Full-key mismatch or torn-looking bytes: the
                        // collision slow path needs `lookup_all`, which
                        // is not racy-safe — take the shard lock for this
                        // one key (the rest of the pass stays lock-free).
                        self.optimistic.assists.fetch_add(1, Ordering::Relaxed);
                        let g = slot.read();
                        fallback.clear();
                        g.index.lookup_all(shard_hashes[j], fallback);
                        let mut resolved = None;
                        for &c in fallback.iter() {
                            if let Some(r) = g.items.get(c) {
                                if item_key(g.slab.chunk(r)) == key {
                                    resolved = Some((c, r));
                                    break;
                                }
                            }
                        }
                        // The assist holds the shared lock, so the same
                        // lazy-expiry rule as the locked path applies.
                        if let Some((item, _)) = resolved {
                            if is_expired(g.items.expires_at(item), now) {
                                shard_expired += 1;
                                resolved = None;
                            }
                        }
                        match resolved {
                            Some((item, r)) => {
                                resp.push_hit(i, item_value(g.slab.chunk(r)));
                                g.clock.touch(item);
                                shard_found += 1;
                            }
                            None => resp.push_miss(),
                        }
                        need_seq = true;
                    }
                }
            }
            let tl2 = Instant::now();

            if !torn && (!need_seq || slot.seq.validate(seq)) {
                self.optimistic.commits.fetch_add(1, Ordering::Relaxed);
                slot.counters
                    .mget_keys
                    .fetch_add(n_sub as u64, Ordering::Relaxed);
                slot.counters
                    .mget_hits
                    .fetch_add(shard_found, Ordering::Relaxed);
                slot.counters
                    .expired
                    .fetch_add(shard_expired, Ordering::Relaxed);
                return Some((
                    shard_found,
                    (tl1 - tl0).as_nanos() as u64,
                    (tl2 - tl1).as_nanos() as u64,
                ));
            }
            self.optimistic.retries.fetch_add(1, Ordering::Relaxed);
            resp.rollback(mark_buf, mark_bytes, (0..processed).map(|j| smap.get(j)));
        }
        self.optimistic.fallbacks.fetch_add(1, Ordering::Relaxed);
        None
    }
}

/// Maps a shard-local batch position `j` back to its request slot: the
/// identity for a single-shard store, or the shard's partition list.
#[derive(Copy, Clone)]
enum SlotMap<'a> {
    Identity,
    Map(&'a [u32]),
}

impl SlotMap<'_> {
    #[inline(always)]
    fn get(&self, j: usize) -> usize {
        match self {
            SlotMap::Identity => j,
            SlotMap::Map(m) => m[j] as usize,
        }
    }
}

impl Shard {
    /// AMAC stage 2 of the Multi-Get verify loop: resolve a candidate's
    /// item-table row (made warm by an earlier [`ItemTable::prefetch`]) to
    /// its slab reference and request the chunk's leading cache line, so
    /// the full-key compare `G` iterations later reads a warm line.
    #[inline(always)]
    fn resolve_and_prefetch(&self, cand: u32) -> Option<SlabRef> {
        if cand == NO_ITEM {
            return None;
        }
        let r = self.items.get(cand)?;
        self.slab.prefetch(r);
        Some(r)
    }

    /// Find the item id whose stored key equals `key`, verifying against
    /// the slab (never trusts the index alone).
    fn find_verified(&self, hash: u32, key: &[u8]) -> Option<u32> {
        let mut candidates = Vec::new();
        self.index.lookup_all(hash, &mut candidates);
        candidates.into_iter().find(|&c| {
            self.items
                .get(c)
                .is_some_and(|r| item_key(self.slab.chunk(r)) == key)
        })
    }

    fn delete_item(&mut self, hash: u32, item: u32) {
        self.index.remove(hash, item);
        self.clock.remove(item);
        if let Some(r) = self.items.unregister(item) {
            self.slab.free(r);
        }
    }

    /// Evict one item under pressure via the TTL-integrated CLOCK sweep:
    /// at each hand position an expired item is reclaimed (dead by TTL,
    /// no information lost) before the reference bit can hand back a
    /// live victim. Returns `Some(true)` when an expired item was
    /// reclaimed, `Some(false)` for a live eviction, `None` when the
    /// shard holds nothing evictable. With no TTLs in play the predicate
    /// is constant-false and the sweep is bit-identical to classic CLOCK.
    fn evict_one(&mut self, now: u64) -> Option<bool> {
        let items = &self.items;
        let (item, was_expired) = self
            .clock
            .evict_with(|id| is_expired(items.expires_at(id), now))?;
        if let Some(r) = self.items.unregister(item) {
            let hash = hash_key(item_key(self.slab.chunk(r)));
            self.index.remove(hash, item);
            self.slab.free(r);
        }
        Some(was_expired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{by_short_name, Memc3Index, SimdIndex, SimdIndexKind};

    fn stores(capacity: usize) -> Vec<KvStore> {
        let cfg = StoreConfig {
            memory_budget: 8 << 20,
            capacity_items: capacity,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        };
        vec![
            KvStore::new(Box::new(Memc3Index::with_capacity(capacity)), cfg),
            KvStore::new(
                Box::new(SimdIndex::with_capacity(
                    SimdIndexKind::HorizontalBcht,
                    capacity,
                )),
                cfg,
            ),
            KvStore::new(
                Box::new(SimdIndex::with_capacity(
                    SimdIndexKind::VerticalNway,
                    capacity,
                )),
                cfg,
            ),
        ]
    }

    fn sharded_stores(capacity: usize, shards: usize) -> Vec<KvStore> {
        ["memc3", "hor", "ver"]
            .iter()
            .map(|which| {
                KvStore::with_shards(
                    StoreConfig {
                        memory_budget: 32 << 20,
                        capacity_items: capacity,
                        shards,
                        prefetch_depth: None,
                        ..StoreConfig::default()
                    },
                    |cap| by_short_name(which, cap).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn set_get_roundtrip_all_indexes() {
        for store in stores(2000) {
            for i in 0..1000u32 {
                store
                    .set(
                        format!("key-{i}").as_bytes(),
                        format!("value-{i}").as_bytes(),
                    )
                    .unwrap();
            }
            for i in (0..1000u32).step_by(7) {
                let v = store.get(format!("key-{i}").as_bytes());
                assert_eq!(
                    v.as_deref(),
                    Some(format!("value-{i}").as_bytes()),
                    "{} key {i}",
                    store.index_name()
                );
            }
            assert_eq!(store.get(b"missing"), None);
        }
    }

    #[test]
    fn sharded_set_get_roundtrip_all_indexes() {
        for store in sharded_stores(4000, 4) {
            assert_eq!(store.n_shards(), 4);
            for i in 0..2000u32 {
                store
                    .set(
                        format!("key-{i}").as_bytes(),
                        format!("value-{i}").as_bytes(),
                    )
                    .unwrap();
            }
            assert_eq!(store.len(), 2000, "{}", store.index_name());
            for i in (0..2000u32).step_by(7) {
                let v = store.get(format!("key-{i}").as_bytes());
                assert_eq!(
                    v.as_deref(),
                    Some(format!("value-{i}").as_bytes()),
                    "{} key {i}",
                    store.index_name()
                );
            }
            assert_eq!(store.get(b"missing"), None);
            // Every shard received a plausible share of 2000 uniform keys.
            let lens = store.shard_lens();
            assert_eq!(lens.iter().sum::<usize>(), 2000);
            for (s, &l) in lens.iter().enumerate() {
                assert!(l > 2000 / 4 / 4, "shard {s} starved: {lens:?}");
            }
        }
    }

    #[test]
    fn set_multi_roundtrip_all_indexes() {
        for store in sharded_stores(4000, 4) {
            let pairs_owned: Vec<(Vec<u8>, Vec<u8>)> = (0..200u32)
                .map(|i| {
                    (
                        format!("mk-{i}").into_bytes(),
                        format!("mv-{i}").into_bytes(),
                    )
                })
                .collect();
            let mut batch = SetMultiBatch::new();
            for chunk in pairs_owned.chunks(48) {
                let pairs: Vec<(&[u8], &[u8])> = chunk
                    .iter()
                    .map(|(k, v)| (k.as_slice(), v.as_slice()))
                    .collect();
                let outcome = store.set_multi(&pairs, &mut batch);
                assert_eq!(outcome.stored, chunk.len(), "{}", store.index_name());
                assert!(batch.results().iter().all(|r| r.is_ok()));
            }
            assert_eq!(store.len(), 200, "{}", store.index_name());
            for (k, v) in &pairs_owned {
                assert_eq!(
                    store.get(k).as_deref(),
                    Some(v.as_slice()),
                    "{}",
                    store.index_name()
                );
            }
            assert_eq!(store.totals().sets, 200, "{}", store.index_name());
        }
    }

    #[test]
    fn set_multi_duplicates_resolve_later_wins() {
        for store in stores(2000) {
            let pairs: Vec<(&[u8], &[u8])> = vec![
                (b"dup", b"first"),
                (b"solo", b"only"),
                (b"dup", b"second"),
                (b"dup", b"third"),
            ];
            let mut batch = SetMultiBatch::new();
            let outcome = store.set_multi(&pairs, &mut batch);
            // Every pair applies (each duplicate replaces its
            // predecessor), but only two keys survive.
            assert_eq!(outcome.stored, 4, "{}", store.index_name());
            assert_eq!(store.len(), 2, "{}", store.index_name());
            assert_eq!(
                store.get(b"dup").as_deref(),
                Some(&b"third"[..]),
                "{}: last pair in the batch must win",
                store.index_name()
            );
            assert_eq!(store.get(b"solo").as_deref(), Some(&b"only"[..]));
        }
    }

    #[test]
    fn set_multi_oversized_pair_fails_alone() {
        for store in stores(2000) {
            let huge = vec![0u8; 8 << 20]; // exceeds every slab class
            let pairs: Vec<(&[u8], &[u8])> = vec![
                (b"ok-1", b"v1"),
                (b"too-big", huge.as_slice()),
                (b"ok-2", b"v2"),
            ];
            let mut batch = SetMultiBatch::new();
            let outcome = store.set_multi(&pairs, &mut batch);
            assert_eq!(outcome.stored, 2, "{}", store.index_name());
            assert_eq!(
                batch.results(),
                &[Ok(()), Err(StoreError::ObjectTooLarge), Ok(())],
                "{}: a failed pair must not stop the rest of the batch",
                store.index_name()
            );
            assert_eq!(store.get(b"ok-1").as_deref(), Some(&b"v1"[..]));
            assert_eq!(store.get(b"too-big"), None);
            assert_eq!(store.get(b"ok-2").as_deref(), Some(&b"v2"[..]));
        }
    }

    #[test]
    fn subframe_scatter_matches_per_request_seal_byte_for_byte() {
        // A coalesced batch scattered via append_subframe must put the
        // same bytes on the wire as serving each request alone through
        // seal_frame + write_frame (both sharded and unsharded stores,
        // hit/miss/empty-value mixes, including an empty request).
        for store in sharded_stores(1000, 4).into_iter().chain(stores(1000)) {
            store.set(b"a", b"alpha").unwrap();
            store.set(b"b", b"").unwrap();
            store.set(b"c", b"gamma-gamma").unwrap();
            // Three requests: [a, miss], [], [b, c, miss].
            let reqs: [(u64, &[&[u8]]); 3] = [
                (10, &[b"a", b"nope"]),
                (11, &[]),
                (12, &[b"b", b"c", b"zilch"]),
            ];
            let combined: Vec<&[u8]> = reqs.iter().flat_map(|(_, ks)| ks.iter().copied()).collect();
            let mut batch = MGetResponse::new();
            store.mget(&combined, &mut batch);

            let mut scattered = Vec::new();
            let mut lo = 0;
            for (id, ks) in &reqs {
                let n = batch.append_subframe(lo..lo + ks.len(), *id, &mut scattered);
                assert!(n >= 4 + RESP_HEADER_BYTES + 4);
                lo += ks.len();
            }

            let mut expect = Vec::new();
            for (id, ks) in &reqs {
                let mut solo = MGetResponse::new();
                store.mget(ks, &mut solo);
                crate::net::write_frame(&mut expect, solo.seal_frame(*id)).unwrap();
            }
            assert_eq!(scattered, expect, "{}", store.index_name());
        }
    }

    #[test]
    fn sharded_mget_spans_shards() {
        for store in sharded_stores(1000, 8) {
            for i in 0..500u32 {
                store
                    .set(format!("k{i}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            let keys: Vec<String> = (0..500u32).map(|i| format!("k{i}")).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let mut resp = MGetResponse::new();
            let out = store.mget(&refs, &mut resp);
            assert_eq!(out.found, 500, "{}", store.index_name());
            for (i, _) in keys.iter().enumerate() {
                assert_eq!(resp.value(i), Some(&(i as u32).to_le_bytes()[..]));
            }
        }
    }

    #[test]
    fn shard_counter_conservation() {
        let store = KvStore::with_shards(
            StoreConfig {
                memory_budget: 16 << 20,
                capacity_items: 4000,
                shards: 8,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
            |cap| by_short_name("hor", cap).unwrap(),
        );
        for i in 0..1000u32 {
            store.set(format!("c{i}").as_bytes(), b"v").unwrap();
        }
        for i in (0..1000u32).step_by(3) {
            assert!(store.delete(format!("c{i}").as_bytes()));
        }
        let keys: Vec<String> = (0..1000u32).map(|i| format!("c{i}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let mut resp = MGetResponse::new();
        let out = store.mget(&refs, &mut resp);

        let totals = store.totals();
        let per_shard = store.shard_stats();
        let mut summed = ShardStats::default();
        for s in &per_shard {
            summed.add(s);
        }
        assert_eq!(summed, totals, "per-shard sums must equal totals");
        assert_eq!(totals.sets, 1000);
        assert_eq!(totals.deletes, 334);
        assert_eq!(totals.mget_keys, 1000);
        assert_eq!(totals.mget_hits as usize, out.found);
        assert_eq!(totals.items, store.len());
        assert_eq!(store.len(), 1000 - 334);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let store = KvStore::with_shards(
            StoreConfig {
                shards: 16,
                ..StoreConfig::default()
            },
            |cap| by_short_name("memc3", cap).unwrap(),
        );
        let (mul, shift, mask) = store.shard_params();
        for i in 0..10_000u32 {
            let key = format!("route-{i}");
            let s = store.shard_of(key.as_bytes());
            assert!(s < 16);
            assert_eq!(s, store.shard_of(key.as_bytes()), "routing must be stable");
            assert_eq!(s, shard_route(hash_key(key.as_bytes()), mul, shift, mask));
        }
    }

    #[test]
    fn replace_updates_value() {
        for store in stores(100) {
            store.set(b"k", b"old").unwrap();
            store.set(b"k", b"new-and-longer-value").unwrap();
            assert_eq!(
                store.get(b"k").as_deref(),
                Some(&b"new-and-longer-value"[..])
            );
            assert_eq!(store.len(), 1, "{}", store.index_name());
        }
    }

    #[test]
    fn delete_removes() {
        for store in stores(100) {
            store.set(b"a", b"1").unwrap();
            assert!(store.delete(b"a"));
            assert!(!store.delete(b"a"));
            assert_eq!(store.get(b"a"), None);
            assert!(store.is_empty());
        }
    }

    #[test]
    fn versions_advance_per_key_and_restart_after_delete() {
        for store in stores(100) {
            assert_eq!(store.set_v(b"k", b"v1", 0).unwrap(), 1);
            assert_eq!(store.set_v(b"k", b"v2", 0).unwrap(), 2);
            assert_eq!(store.set_v(b"k", b"wider-value-than-v2", 0).unwrap(), 3);
            assert_eq!(
                store.get_v(b"k"),
                Some((b"wider-value-than-v2".to_vec(), 3)),
                "{}",
                store.index_name()
            );
            assert_eq!(store.get_v(b"absent"), None);
            // Delete ends the chain; a re-set starts a new one at 1.
            assert!(store.delete(b"k"));
            assert_eq!(store.set_v(b"k", b"fresh", 0).unwrap(), 1);
            // Other keys have independent chains.
            assert_eq!(store.set_v(b"other", b"x", 0).unwrap(), 1);
        }
    }

    #[test]
    fn cas_requires_matching_version() {
        for store in stores(100) {
            let name = store.index_name();
            assert_eq!(
                store.cas(b"k", 1, b"v", 0).unwrap(),
                CasOutcome::NotFound,
                "{name}"
            );
            let v = store.set_v(b"k", b"v1", 0).unwrap();
            assert_eq!(
                store.cas(b"k", v + 1, b"nope", 0).unwrap(),
                CasOutcome::Conflict(v),
                "{name}"
            );
            assert_eq!(store.get(b"k").as_deref(), Some(&b"v1"[..]), "{name}");
            assert_eq!(
                store.cas(b"k", v, b"v2", 0).unwrap(),
                CasOutcome::Stored(v + 1),
                "{name}"
            );
            assert_eq!(store.get_v(b"k"), Some((b"v2".to_vec(), v + 1)), "{name}");
            // The consumed version can never win again.
            assert_eq!(
                store.cas(b"k", v, b"stale", 0).unwrap(),
                CasOutcome::Conflict(v + 1),
                "{name}"
            );
            let t = store.totals();
            assert_eq!((t.cas_ok, t.cas_conflicts), (1, 2), "{name}");
        }
    }

    #[test]
    fn ttl_expiry_is_lazy_and_mode_agnostic() {
        for store in stores(2000).iter().chain(sharded_stores(2000, 4).iter()) {
            let name = store.index_name();
            store.set_v(b"mortal", b"doomed", 5).unwrap();
            store.set_v(b"immortal", b"stays", 0).unwrap();
            for mode in [ReadMode::Locked, ReadMode::Optimistic] {
                store.set_read_mode(mode);
                assert_eq!(store.get(b"mortal").as_deref(), Some(&b"doomed"[..]));
            }
            store.advance_time(5);
            let mut resp = MGetResponse::new();
            for mode in [ReadMode::Locked, ReadMode::Optimistic] {
                store.set_read_mode(mode);
                assert_eq!(store.get(b"mortal"), None, "{name}/{:?}", mode);
                assert_eq!(store.get_v(b"mortal"), None, "{name}/{:?}", mode);
                assert_eq!(store.get(b"immortal").as_deref(), Some(&b"stays"[..]));
                let out = store.mget(&[b"mortal".as_ref(), b"immortal".as_ref()], &mut resp);
                assert_eq!(out.found, 1, "{name}/{:?}", mode);
                assert_eq!(resp.value(0), None, "{name}/{:?}", mode);
                assert_eq!(resp.value(1), Some(&b"stays"[..]), "{name}/{:?}", mode);
            }
            store.set_read_mode(ReadMode::Locked);
            assert!(store.totals().expired > 0, "{name}");
            // Expired keys are absent to every verb.
            assert!(!store.delete(b"mortal"), "{name}");
            assert!(!store.touch(b"mortal", 10), "{name}");
            assert_eq!(
                store.cas(b"mortal", 1, b"x", 0).unwrap(),
                CasOutcome::NotFound
            );
            // A re-set starts a fresh chain at version 1.
            assert_eq!(store.set_v(b"mortal", b"reborn", 0).unwrap(), 1, "{name}");
            assert_eq!(store.get(b"mortal").as_deref(), Some(&b"reborn"[..]));
        }
    }

    #[test]
    fn touch_extends_and_shortens_ttl() {
        let store = &stores(100)[0];
        store.set_v(b"k", b"v", 4).unwrap();
        assert!(store.set_ttl(b"k", 100));
        store.advance_time(50);
        assert_eq!(store.get(b"k").as_deref(), Some(&b"v"[..]), "extended");
        // Shorten back; also cover the clear-to-immortal path.
        assert!(store.touch(b"k", 1));
        store.advance_time(1);
        assert_eq!(store.get(b"k"), None, "shortened ttl must expire");
        store.set_v(b"k2", b"v", 3).unwrap();
        assert!(store.set_ttl(b"k2", 0));
        store.advance_time(1000);
        assert_eq!(store.get(b"k2").as_deref(), Some(&b"v"[..]), "ttl cleared");
        assert!(!store.set_ttl(b"missing", 5));
        assert_eq!(store.totals().touches, 3);
    }

    #[test]
    fn eviction_reclaims_expired_before_live_victims() {
        let store = KvStore::new(
            Box::new(Memc3Index::with_capacity(100_000)),
            StoreConfig {
                memory_budget: 2 << 20, // forces pressure
                capacity_items: 100_000,
                shards: 1,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
        );
        let value = vec![0xCDu8; 1024];
        // Fill the arena with soon-to-expire items, let them die, then
        // keep writing immortal items: the write pressure must be
        // satisfied by reclaiming the corpses, not by evicting live keys.
        for i in 0..1500u32 {
            store
                .set_v(format!("dead-{i:06}").as_bytes(), &value, 2)
                .unwrap();
        }
        store.advance_time(2);
        for i in 0..1000u32 {
            store
                .set_v(format!("live-{i:06}").as_bytes(), &value, 0)
                .unwrap();
        }
        let t = store.totals();
        assert!(
            t.expired > 0,
            "pressure never reclaimed an expired item (expired={})",
            t.expired
        );
        // Every live key must have survived: the corpses were enough.
        for i in 0..1000u32 {
            assert!(
                store.get(format!("live-{i:06}").as_bytes()).is_some(),
                "live-{i:06} was evicted while expired items remained"
            );
        }
    }

    #[test]
    fn mget_mixed_hits_and_misses() {
        for store in stores(100) {
            store.set(b"x", b"xval").unwrap();
            store.set(b"y", b"yval").unwrap();
            let mut resp = MGetResponse::new();
            let outcome = store.mget(&[b"x".as_ref(), b"nope".as_ref(), b"y".as_ref()], &mut resp);
            assert_eq!(outcome.found, 2, "{}", store.index_name());
            assert_eq!(resp.value(0), Some(&b"xval"[..]));
            assert_eq!(resp.value(1), None);
            assert_eq!(resp.value(2), Some(&b"yval"[..]));
            assert!(outcome.phases.total() > 0);
        }
    }

    #[test]
    fn eviction_under_memory_pressure() {
        let store = KvStore::new(
            Box::new(Memc3Index::with_capacity(100_000)),
            StoreConfig {
                memory_budget: 2 << 20, // 2 MiB: forces eviction
                capacity_items: 100_000,
                shards: 1,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
        );
        let value = vec![0xABu8; 1024];
        for i in 0..10_000u32 {
            store.set(format!("key-{i:06}").as_bytes(), &value).unwrap();
        }
        // The store survived and recent keys are readable.
        assert!(store.len() < 10_000, "eviction never triggered");
        assert_eq!(store.get(b"key-009999").as_deref(), Some(&value[..]));
        assert!(store.totals().evictions > 0, "evictions must be counted");
    }

    #[test]
    fn index_full_triggers_eviction_not_failure() {
        // A deliberately undersized index forces the IndexFull -> evict ->
        // retry path in set(); the store must keep absorbing writes.
        let store = KvStore::new(
            Box::new(Memc3Index::with_capacity(64)),
            StoreConfig {
                memory_budget: 8 << 20,
                capacity_items: 64,
                shards: 1,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
        );
        for i in 0..2000u32 {
            store
                .set(format!("spill-{i}").as_bytes(), b"v")
                .unwrap_or_else(|e| panic!("set {i}: {e}"));
        }
        // The cache retains roughly the index capacity and stays readable.
        assert!(store.len() <= 128, "len {}", store.len());
        assert_eq!(store.get(b"spill-1999").as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn response_buffer_reuse() {
        let store = &stores(100)[0];
        store.set(b"a", b"aaaa").unwrap();
        let mut resp = MGetResponse::new();
        store.mget(&[b"a".as_ref()], &mut resp);
        assert_eq!(resp.payload_bytes(), 4);
        store.mget(&[b"missing".as_ref()], &mut resp);
        assert_eq!(resp.payload_bytes(), 0);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp.value(0), None);
    }

    #[test]
    fn response_buffer_reusable_across_shard_counts() {
        // One MGetResponse driven against stores of different shard counts
        // must not carry stale partition scratch between them.
        let s1 = &sharded_stores(500, 1)[0];
        let s8 = &sharded_stores(500, 8)[0];
        s1.set(b"k", b"one").unwrap();
        s8.set(b"k", b"eight").unwrap();
        let mut resp = MGetResponse::new();
        s8.mget(&[b"k".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"eight"[..]));
        s1.mget(&[b"k".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"one"[..]));
        s8.mget(&[b"k".as_ref(), b"absent".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"eight"[..]));
        assert_eq!(resp.value(1), None);
    }

    #[test]
    fn read_mode_parse_and_default() {
        assert_eq!(ReadMode::parse("locked"), Some(ReadMode::Locked));
        assert_eq!(ReadMode::parse("optimistic"), Some(ReadMode::Optimistic));
        assert_eq!(ReadMode::parse("bogus"), None);
        assert_eq!(StoreConfig::default().read_mode, ReadMode::Locked);
        let store = &stores(10)[0];
        assert_eq!(store.read_mode(), ReadMode::Locked);
        store.set_read_mode(ReadMode::Optimistic);
        assert_eq!(store.read_mode(), ReadMode::Optimistic);
        assert_eq!(ReadMode::Optimistic.name(), "optimistic");
    }

    #[test]
    fn optimistic_reads_match_locked_and_commit() {
        // Quiescent store: every optimistic read must commit (no writers
        // to race) and return exactly what the locked path returns.
        for store in stores(2000).iter().chain(sharded_stores(2000, 4).iter()) {
            for i in 0..800u32 {
                store
                    .set(format!("k{i}").as_bytes(), format!("val-{i}").as_bytes())
                    .unwrap();
            }
            let keys: Vec<String> = (0..900u32).map(|i| format!("k{i}")).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let mut locked = MGetResponse::new();
            let out_locked = store.mget(&refs, &mut locked);
            let locked_frame = locked.seal_frame(7).to_vec();
            let locked_gets: Vec<Option<Vec<u8>>> = refs.iter().map(|k| store.get(k)).collect();

            store.set_read_mode(ReadMode::Optimistic);
            let before = store.optimistic_stats();
            let mut opt = MGetResponse::new();
            let out_opt = store.mget(&refs, &mut opt);
            assert_eq!(out_opt.found, out_locked.found, "{}", store.index_name());
            assert_eq!(
                opt.seal_frame(7),
                &locked_frame[..],
                "{}",
                store.index_name()
            );
            let opt_gets: Vec<Option<Vec<u8>>> = refs.iter().map(|k| store.get(k)).collect();
            assert_eq!(opt_gets, locked_gets, "{}", store.index_name());
            let after = store.optimistic_stats();
            assert!(after.commits > before.commits, "{}", store.index_name());
            // No concurrent writers, so no read should ever need a retry.
            // (Fallbacks CAN still happen on a quiescent store: a tag
            // collision yields a full-key mismatch that `get` resolves on
            // the locked path rather than guessing.)
            assert_eq!(after.retries, before.retries, "{}", store.index_name());
            store.set_read_mode(ReadMode::Locked);
        }
    }

    /// Hold a writer mid-`set` (old item deleted, new not yet written,
    /// shard version odd) via the torture hook; returns the paused store
    /// plus the barriers and writer handle.
    fn paused_writer_store() -> (
        std::sync::Arc<KvStore>,
        std::sync::Arc<std::sync::Barrier>,
        std::thread::JoinHandle<()>,
    ) {
        use std::sync::{Arc, Barrier};
        let store = Arc::new(KvStore::new(
            Box::new(Memc3Index::with_capacity(100)),
            StoreConfig {
                read_mode: ReadMode::Optimistic,
                ..StoreConfig::default()
            },
        ));
        store.set(b"hot", b"v1").unwrap();
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        {
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            store.set_torture_set_pause(Some(Box::new(move || {
                entered.wait();
                release.wait();
            })));
        }
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.set(b"hot", b"v2").unwrap())
        };
        entered.wait(); // writer is now paused mid-mutation
        (store, release, writer)
    }

    fn wait_for_fallback(store: &KvStore, before: u64) {
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while store.optimistic_stats().fallbacks == before {
            assert!(
                Instant::now() < deadline,
                "reader never fell back off the optimistic path"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn torn_read_get_spins_and_falls_back() {
        // The adversarial torn-read oracle: while the writer is held
        // mid-mutation the key's old item is GONE from index and table —
        // a reader trusting the racy probe would answer `None` (a torn
        // read: the key never stopped existing). The seqlock discipline
        // (odd version → spin → locked fallback) must make the reader
        // block and return the *new* value instead. Deleting the version
        // re-check deliberately makes this test fail.
        let (store, release, writer) = paused_writer_store();
        let before = store.optimistic_stats().fallbacks;
        let reader = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || store.get(b"hot"))
        };
        // The reader provably gave up optimistically while the writer was
        // still paused — not after it finished.
        wait_for_fallback(&store, before);
        release.wait();
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap().as_deref(), Some(&b"v2"[..]));
        // With the writer gone, optimistic reads commit again.
        let commits = store.optimistic_stats().commits;
        assert_eq!(store.get(b"hot").as_deref(), Some(&b"v2"[..]));
        assert!(store.optimistic_stats().commits > commits);
    }

    #[test]
    fn torn_read_prefetched_mget_spins_and_falls_back() {
        // Same oracle through the G-ahead prefetched Multi-Get pipeline.
        let (store, release, writer) = paused_writer_store();
        store.set_prefetch_depth(8);
        let before = store.optimistic_stats().fallbacks;
        let reader = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                let mut resp = MGetResponse::new();
                let keys: [&[u8]; 3] = [b"hot", b"missing-a", b"missing-b"];
                let out = store.mget(&keys, &mut resp);
                (out.found, resp.value(0).map(<[u8]>::to_vec))
            })
        };
        wait_for_fallback(&store, before);
        release.wait();
        writer.join().unwrap();
        let (found, hot) = reader.join().unwrap();
        assert_eq!(found, 1);
        assert_eq!(hot.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn concurrent_reads_while_writing() {
        use std::sync::Arc;
        let store = Arc::new(KvStore::new(
            Box::new(SimdIndex::with_capacity(
                SimdIndexKind::VerticalNway,
                10_000,
            )),
            StoreConfig::default(),
        ));
        for i in 0..2000u32 {
            store.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Reader and writer threads are all joined below; KvStore itself
        // never spawns threads (see the module docs), so the store drops
        // only after every thread's Arc clone is gone.
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut resp = MGetResponse::new();
                    let mut found = 0;
                    for i in 0..500u32 {
                        let key = format!("k{}", (i * 7 + t) % 2000);
                        found += store.mget(&[key.as_bytes()], &mut resp).found;
                    }
                    found
                })
            })
            .collect();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 2000..2500u32 {
                    store.set(format!("k{i}").as_bytes(), b"w").unwrap();
                }
            })
        };
        for r in readers {
            assert_eq!(r.join().unwrap(), 500);
        }
        writer.join().unwrap();
    }

    #[test]
    fn drop_does_not_race_concurrent_use() {
        // Regression for the drop/shutdown contract: the main handle is
        // dropped while worker threads still hold Arc clones; the last
        // worker to finish performs the real drop. Must not deadlock,
        // panic, or leak a poisoned lock.
        use std::sync::Arc;
        for _ in 0..8 {
            let store = Arc::new(KvStore::with_shards(
                StoreConfig {
                    memory_budget: 8 << 20,
                    capacity_items: 2000,
                    shards: 4,
                    prefetch_depth: None,
                    ..StoreConfig::default()
                },
                |cap| by_short_name("ver", cap).unwrap(),
            ));
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let store = Arc::clone(&store);
                    std::thread::spawn(move || {
                        let mut resp = MGetResponse::new();
                        for i in 0..200u32 {
                            let key = format!("d{}-{}", t, i);
                            store.set(key.as_bytes(), b"v").unwrap();
                            store.mget(&[key.as_bytes()], &mut resp);
                        }
                    })
                })
                .collect();
            drop(store); // main handle gone while threads are mid-flight
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
