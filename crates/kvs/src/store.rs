//! The in-memory key-value store: slab-backed items, a pluggable hash
//! index, CLOCK freshness, and the three-phase Multi-Get pipeline the
//! paper instruments (§VI-A, Fig. 10/11b):
//!
//! 1. **Pre-processing** — parse the batch, compute a 32-bit hash per
//!    key, and partition the batch by shard.
//! 2. **Hash-table lookup** — the batched index probe (the phase SIMD
//!    accelerates), run per shard under that shard's shared lock.
//! 3. **Post-processing** — resolve object pointers, verify the full key
//!    against the slab, copy values into the response, and update CLOCK
//!    freshness metadata.
//!
//! # Sharding
//!
//! The store is split into `S` power-of-two **shards** (the paper's first
//! named piece of future work is concurrent mixed read/write workloads;
//! sharding is the standard memcached scaling recipe). Each shard owns its
//! own slab arena, item table, hash index, CLOCK ring, and statistics, all
//! behind one `RwLock`. Keys route to shards by an independent
//! multiply-shift hash over the 32-bit key hash — the same scheme as
//! [`simdht_table::sharded::ShardedTable`] — so a hot index bucket and a
//! hot shard are uncorrelated.
//!
//! Writes (`set`/`delete`) lock only their key's shard. A Multi-Get is
//! partitioned by shard and runs one batched SIMD lookup per non-empty
//! shard; it holds **at most one shard lock at a time** (see DESIGN.md,
//! "Shard routing and lock hierarchy"), so lookups scale with shard count
//! and can never deadlock against multi-key writers.
//!
//! `KvStore` spawns no background threads: dropping it (after the last
//! `Arc` clone goes away) only frees memory and cannot race an in-flight
//! request, because any in-flight request holds a shard guard borrowed
//! from the store itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::RwLock;

use crate::clock::Clock;
use crate::index::{hash_key, HashIndex, IndexError};
use crate::item::{item_key, item_value, write_item, ItemTable, NO_ITEM};
use crate::slab::{SlabAllocator, SlabError};

/// Store construction parameters.
#[derive(Copy, Clone, Debug)]
pub struct StoreConfig {
    /// Slab memory budget in bytes (split evenly across shards).
    pub memory_budget: usize,
    /// Expected maximum live items (sizes the hash index; split across
    /// shards).
    pub capacity_items: usize,
    /// Number of shards (rounded up to a power of two; `1` = the classic
    /// single-lock store).
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_budget: 64 << 20,
            capacity_items: 100_000,
            shards: 1,
        }
    }
}

/// Error from [`KvStore::set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object cannot fit in any slab class.
    ObjectTooLarge,
    /// Could not make room even after evicting everything.
    OutOfMemory,
    /// The hash index refused the entry even after eviction attempts.
    IndexFull,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ObjectTooLarge => write!(f, "object exceeds largest slab class"),
            StoreError::OutOfMemory => write!(f, "out of memory after eviction"),
            StoreError::IndexFull => write!(f, "hash index full after eviction"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-phase elapsed nanoseconds of one Multi-Get (Fig. 11b breakdown).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Pre-processing: parse + hash + shard partition.
    pub pre: u64,
    /// Hash-table lookup (batched, summed over probed shards).
    pub lookup: u64,
    /// Post-processing: verify + copy + CLOCK updates.
    pub post: u64,
}

impl PhaseNanos {
    /// Total server data-access time.
    pub fn total(&self) -> u64 {
        self.pre + self.lookup + self.post
    }

    /// Accumulate another breakdown.
    pub fn add(&mut self, other: PhaseNanos) {
        self.pre += other.pre;
        self.lookup += other.lookup;
        self.post += other.post;
    }
}

/// Result of one Multi-Get.
#[derive(Copy, Clone, Debug, Default)]
pub struct MGetOutcome {
    /// Keys found.
    pub found: usize,
    /// Phase timing.
    pub phases: PhaseNanos,
}

/// A reusable Multi-Get response buffer: values are appended to one flat
/// buffer (as a real server builds its wire response).
#[derive(Debug, Default, Clone)]
pub struct MGetResponse {
    buf: Vec<u8>,
    entries: Vec<Option<(u32, u32)>>,
    // Reusable scratch for the lookup pipeline (no per-request allocation).
    hashes: Vec<u32>,
    candidates: Vec<u32>,
    per_shard: Vec<Vec<u32>>,
    sub_hashes: Vec<u32>,
}

impl MGetResponse {
    /// Create an empty response buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.buf.clear();
        self.entries.clear();
        self.entries.resize(n, None);
    }

    /// Number of slots (keys in the request).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the response holds no slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value returned for request slot `i`, if found.
    pub fn value(&self, i: usize) -> Option<&[u8]> {
        self.entries[i].map(|(off, len)| &self.buf[off as usize..(off + len) as usize])
    }

    fn push_value(&mut self, i: usize, value: &[u8]) {
        let off = self.buf.len() as u32;
        self.buf.extend_from_slice(value);
        self.entries[i] = Some((off, value.len() as u32));
    }

    /// The flat value buffer (for response-size accounting).
    pub fn payload_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Multiply-shift shard routing over a 32-bit key hash — the same scheme
/// `simdht_table::sharded::ShardedTable` uses for its table keys, exposed
/// so property tests can prove the two layers agree on placement for the
/// same `(mul, shift, mask)` parameters.
#[inline(always)]
pub fn shard_route(hash: u32, mul: u32, shift: u32, mask: usize) -> usize {
    (hash.wrapping_mul(mul) >> shift) as usize & mask
}

/// The fixed routing multiplier (odd, independent of the FNV key hash and
/// of every index's bucket function).
pub const SHARD_MUL: u32 = 0x9E37_79B9;

/// Snapshot of one shard's counters (or their sum, via
/// [`KvStore::totals`]). Conservation invariant: summing any field across
/// [`KvStore::shard_stats`] equals the same field of [`KvStore::totals`],
/// and `items` sums to [`KvStore::len`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live items.
    pub items: usize,
    /// Successful `set` calls routed here.
    pub sets: u64,
    /// Successful `delete` calls routed here.
    pub deletes: u64,
    /// CLOCK evictions performed here.
    pub evictions: u64,
    /// Multi-Get keys probed here.
    pub mget_keys: u64,
    /// Multi-Get keys found here.
    pub mget_hits: u64,
}

impl ShardStats {
    /// Accumulate another shard's counters.
    pub fn add(&mut self, other: &ShardStats) {
        self.items += other.items;
        self.sets += other.sets;
        self.deletes += other.deletes;
        self.evictions += other.evictions;
        self.mget_keys += other.mget_keys;
        self.mget_hits += other.mget_hits;
    }
}

#[derive(Default)]
struct ShardCounters {
    sets: AtomicU64,
    deletes: AtomicU64,
    evictions: AtomicU64,
    mget_keys: AtomicU64,
    mget_hits: AtomicU64,
}

struct Shard {
    slab: SlabAllocator,
    items: ItemTable,
    index: Box<dyn HashIndex>,
    clock: Clock,
}

struct ShardSlot {
    lock: RwLock<Shard>,
    counters: ShardCounters,
}

/// The sharded key-value store. Reads (`get`/`mget`) take a shared lock on
/// each shard they probe (one at a time) and run concurrently across
/// server workers; writes (`set`/`delete`) serialize only within their
/// key's shard.
pub struct KvStore {
    shards: Vec<ShardSlot>,
    shard_mul: u32,
    shard_shift: u32,
    shard_mask: usize,
    name: &'static str,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("index", &self.name)
            .field("shards", &self.shards.len())
            .field("items", &self.len())
            .finish()
    }
}

impl KvStore {
    /// Create a classic single-shard store over the given hash index.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards > 1` — a multi-shard store needs one index
    /// per shard; use [`KvStore::with_shards`].
    pub fn new(index: Box<dyn HashIndex>, config: StoreConfig) -> Self {
        assert!(
            config.shards <= 1,
            "KvStore::new builds a single shard; use KvStore::with_shards for {} shards",
            config.shards
        );
        let mut index = Some(index);
        Self::with_shards(
            StoreConfig {
                shards: 1,
                ..config
            },
            move |_| index.take().expect("single shard"),
        )
    }

    /// Create a store with `config.shards` shards (rounded up to a power
    /// of two), calling `make_index` once per shard with the per-shard
    /// item capacity.
    pub fn with_shards(
        config: StoreConfig,
        mut make_index: impl FnMut(usize) -> Box<dyn HashIndex>,
    ) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let per_capacity = config.capacity_items.div_ceil(n);
        let per_budget = (config.memory_budget / n).max(1 << 20);
        let shards: Vec<ShardSlot> = (0..n)
            .map(|_| ShardSlot {
                lock: RwLock::new(Shard {
                    slab: SlabAllocator::new(per_budget),
                    items: ItemTable::new(),
                    index: make_index(per_capacity),
                    clock: Clock::new(),
                }),
                counters: ShardCounters::default(),
            })
            .collect();
        let name = shards[0].lock.read().index.name();
        let log2 = n.trailing_zeros();
        KvStore {
            shards,
            shard_mul: SHARD_MUL,
            shard_shift: (32 - log2).clamp(1, 31),
            shard_mask: n - 1,
            name,
        }
    }

    /// The backing index's name (for reports).
    pub fn index_name(&self) -> &'static str {
        self.name
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `(mul, shift, mask)` routing parameters (for placement tests).
    pub fn shard_params(&self) -> (u32, u32, usize) {
        (self.shard_mul, self.shard_shift, self.shard_mask)
    }

    /// The shard index `key` routes to.
    #[inline(always)]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.shard_for_hash(hash_key(key))
    }

    #[inline(always)]
    fn shard_for_hash(&self, hash: u32) -> usize {
        shard_route(hash, self.shard_mul, self.shard_shift, self.shard_mask)
    }

    /// Number of live items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock.read().items.len()).sum()
    }

    /// Live item count per shard (balance reporting).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock.read().items.len())
            .collect()
    }

    /// Per-shard counter snapshots.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                items: s.lock.read().items.len(),
                sets: s.counters.sets.load(Ordering::Relaxed),
                deletes: s.counters.deletes.load(Ordering::Relaxed),
                evictions: s.counters.evictions.load(Ordering::Relaxed),
                mget_keys: s.counters.mget_keys.load(Ordering::Relaxed),
                mget_hits: s.counters.mget_hits.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Counters summed over all shards.
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in self.shard_stats() {
            t.add(&s);
        }
        t
    }

    /// `true` when the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or replace `key → value`, locking only the key's shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectTooLarge`] for oversized objects;
    /// [`StoreError::OutOfMemory`] / [`StoreError::IndexFull`] when
    /// eviction (within this shard) cannot make room.
    pub fn set(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let mut g = slot.lock.write();
        // Replace semantics: drop any existing item with this exact key.
        if let Some(existing) = g.find_verified(hash, key) {
            g.delete_item(hash, existing);
        }
        // Allocate, evicting on pressure.
        let slab_ref = loop {
            match write_item(&mut g.slab, key, value) {
                Ok(r) => break r,
                Err(SlabError::ObjectTooLarge { .. }) => return Err(StoreError::ObjectTooLarge),
                Err(SlabError::OutOfMemory) => {
                    if g.evict_one() {
                        slot.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    } else {
                        return Err(StoreError::OutOfMemory);
                    }
                }
            }
        };
        let item = g.items.register(slab_ref);
        // Index insertion, evicting on pressure.
        loop {
            match g.index.insert(hash, item) {
                Ok(()) => break,
                Err(IndexError::Full) => {
                    if g.evict_one() {
                        slot.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Roll back the slab registration.
                        let r = g.items.unregister(item).expect("just registered");
                        g.slab.free(r);
                        return Err(StoreError::IndexFull);
                    }
                }
            }
        }
        g.clock.admit(item);
        slot.counters.sets.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Look up a single key (convenience wrapper over the batched path).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut resp = MGetResponse::new();
        self.mget(&[key], &mut resp);
        resp.value(0).map(<[u8]>::to_vec)
    }

    /// Delete a key; returns `true` if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let hash = hash_key(key);
        let slot = &self.shards[self.shard_for_hash(hash)];
        let mut g = slot.lock.write();
        match g.find_verified(hash, key) {
            Some(item) => {
                g.delete_item(hash, item);
                slot.counters.deletes.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// The batched Multi-Get pipeline with per-phase timing.
    ///
    /// The batch is partitioned by shard during pre-processing; each
    /// non-empty shard then runs one batched lookup + post-processing pass
    /// under its shared lock. At most one shard lock is held at a time.
    ///
    /// `resp` is reset and refilled; reusing one buffer across calls avoids
    /// per-request allocation, as a real server does.
    pub fn mget(&self, keys: &[&[u8]], resp: &mut MGetResponse) -> MGetOutcome {
        // Phase 1: pre-processing — parse batch, hash every key, partition
        // the batch by shard.
        let t0 = Instant::now();
        resp.reset(keys.len());
        let mut hashes = std::mem::take(&mut resp.hashes);
        hashes.clear();
        hashes.extend(keys.iter().map(|k| hash_key(k)));
        let single = self.shards.len() == 1;
        let mut per_shard = std::mem::take(&mut resp.per_shard);
        if !single {
            per_shard.resize_with(self.shards.len(), Vec::new);
            for bucket in per_shard.iter_mut() {
                bucket.clear();
            }
            for (i, &h) in hashes.iter().enumerate() {
                per_shard[self.shard_for_hash(h)].push(i as u32);
            }
        }
        let t1 = Instant::now();

        // Phases 2+3 per shard, under that shard's lock only.
        let mut candidates = std::mem::take(&mut resp.candidates);
        let mut sub_hashes = std::mem::take(&mut resp.sub_hashes);
        let mut fallback: Vec<u32> = Vec::new();
        let mut found = 0usize;
        let mut lookup_ns = 0u64;
        let mut post_ns = 0u64;
        for (s, slot) in self.shards.iter().enumerate() {
            let n_sub = if single {
                keys.len()
            } else {
                per_shard[s].len()
            };
            if n_sub == 0 {
                continue;
            }
            let g = slot.lock.read();

            // Phase 2: hash-table lookup (the batched, SIMD-accelerable
            // phase) over this shard's slice of the request.
            let tl0 = Instant::now();
            let shard_hashes: &[u32] = if single {
                &hashes
            } else {
                sub_hashes.clear();
                sub_hashes.extend(per_shard[s].iter().map(|&i| hashes[i as usize]));
                &sub_hashes
            };
            candidates.clear();
            candidates.resize(n_sub, NO_ITEM);
            g.index.lookup_batch(shard_hashes, &mut candidates);
            let tl1 = Instant::now();

            // Phase 3: post-processing — verify, copy values, update CLOCK.
            let mut shard_found = 0u64;
            for (j, &cand) in candidates.iter().enumerate() {
                let i = if single { j } else { per_shard[s][j] as usize };
                let key = keys[i];
                let mut resolved = None;
                if cand != NO_ITEM {
                    if let Some(r) = g.items.get(cand) {
                        let chunk = g.slab.chunk(r);
                        if item_key(chunk) == key {
                            resolved = Some((cand, r));
                        }
                    }
                }
                if resolved.is_none() && cand != NO_ITEM {
                    // Tag/hash collision: scan all candidates (MemC3 slow
                    // path).
                    fallback.clear();
                    g.index.lookup_all(shard_hashes[j], &mut fallback);
                    for &c in &fallback {
                        if let Some(r) = g.items.get(c) {
                            if item_key(g.slab.chunk(r)) == key {
                                resolved = Some((c, r));
                                break;
                            }
                        }
                    }
                }
                if let Some((item, r)) = resolved {
                    resp.push_value(i, item_value(g.slab.chunk(r)));
                    g.clock.touch(item);
                    shard_found += 1;
                }
            }
            let tl2 = Instant::now();
            drop(g);
            found += shard_found as usize;
            lookup_ns += (tl1 - tl0).as_nanos() as u64;
            post_ns += (tl2 - tl1).as_nanos() as u64;
            slot.counters
                .mget_keys
                .fetch_add(n_sub as u64, Ordering::Relaxed);
            slot.counters
                .mget_hits
                .fetch_add(shard_found, Ordering::Relaxed);
        }
        resp.hashes = hashes;
        resp.candidates = candidates;
        resp.per_shard = per_shard;
        resp.sub_hashes = sub_hashes;

        MGetOutcome {
            found,
            phases: PhaseNanos {
                pre: (t1 - t0).as_nanos() as u64,
                lookup: lookup_ns,
                post: post_ns,
            },
        }
    }
}

impl Shard {
    /// Find the item id whose stored key equals `key`, verifying against
    /// the slab (never trusts the index alone).
    fn find_verified(&self, hash: u32, key: &[u8]) -> Option<u32> {
        let mut candidates = Vec::new();
        self.index.lookup_all(hash, &mut candidates);
        candidates.into_iter().find(|&c| {
            self.items
                .get(c)
                .is_some_and(|r| item_key(self.slab.chunk(r)) == key)
        })
    }

    fn delete_item(&mut self, hash: u32, item: u32) {
        self.index.remove(hash, item);
        self.clock.remove(item);
        if let Some(r) = self.items.unregister(item) {
            self.slab.free(r);
        }
    }

    /// Evict one CLOCK victim; returns `false` if nothing can be evicted.
    fn evict_one(&mut self) -> bool {
        let Some(item) = self.clock.evict() else {
            return false;
        };
        if let Some(r) = self.items.unregister(item) {
            let hash = hash_key(item_key(self.slab.chunk(r)));
            self.index.remove(hash, item);
            self.slab.free(r);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{by_short_name, Memc3Index, SimdIndex, SimdIndexKind};

    fn stores(capacity: usize) -> Vec<KvStore> {
        let cfg = StoreConfig {
            memory_budget: 8 << 20,
            capacity_items: capacity,
            shards: 1,
        };
        vec![
            KvStore::new(Box::new(Memc3Index::with_capacity(capacity)), cfg),
            KvStore::new(
                Box::new(SimdIndex::with_capacity(
                    SimdIndexKind::HorizontalBcht,
                    capacity,
                )),
                cfg,
            ),
            KvStore::new(
                Box::new(SimdIndex::with_capacity(
                    SimdIndexKind::VerticalNway,
                    capacity,
                )),
                cfg,
            ),
        ]
    }

    fn sharded_stores(capacity: usize, shards: usize) -> Vec<KvStore> {
        ["memc3", "hor", "ver"]
            .iter()
            .map(|which| {
                KvStore::with_shards(
                    StoreConfig {
                        memory_budget: 32 << 20,
                        capacity_items: capacity,
                        shards,
                    },
                    |cap| by_short_name(which, cap).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn set_get_roundtrip_all_indexes() {
        for store in stores(2000) {
            for i in 0..1000u32 {
                store
                    .set(
                        format!("key-{i}").as_bytes(),
                        format!("value-{i}").as_bytes(),
                    )
                    .unwrap();
            }
            for i in (0..1000u32).step_by(7) {
                let v = store.get(format!("key-{i}").as_bytes());
                assert_eq!(
                    v.as_deref(),
                    Some(format!("value-{i}").as_bytes()),
                    "{} key {i}",
                    store.index_name()
                );
            }
            assert_eq!(store.get(b"missing"), None);
        }
    }

    #[test]
    fn sharded_set_get_roundtrip_all_indexes() {
        for store in sharded_stores(4000, 4) {
            assert_eq!(store.n_shards(), 4);
            for i in 0..2000u32 {
                store
                    .set(
                        format!("key-{i}").as_bytes(),
                        format!("value-{i}").as_bytes(),
                    )
                    .unwrap();
            }
            assert_eq!(store.len(), 2000, "{}", store.index_name());
            for i in (0..2000u32).step_by(7) {
                let v = store.get(format!("key-{i}").as_bytes());
                assert_eq!(
                    v.as_deref(),
                    Some(format!("value-{i}").as_bytes()),
                    "{} key {i}",
                    store.index_name()
                );
            }
            assert_eq!(store.get(b"missing"), None);
            // Every shard received a plausible share of 2000 uniform keys.
            let lens = store.shard_lens();
            assert_eq!(lens.iter().sum::<usize>(), 2000);
            for (s, &l) in lens.iter().enumerate() {
                assert!(l > 2000 / 4 / 4, "shard {s} starved: {lens:?}");
            }
        }
    }

    #[test]
    fn sharded_mget_spans_shards() {
        for store in sharded_stores(1000, 8) {
            for i in 0..500u32 {
                store
                    .set(format!("k{i}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            let keys: Vec<String> = (0..500u32).map(|i| format!("k{i}")).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let mut resp = MGetResponse::new();
            let out = store.mget(&refs, &mut resp);
            assert_eq!(out.found, 500, "{}", store.index_name());
            for (i, _) in keys.iter().enumerate() {
                assert_eq!(resp.value(i), Some(&(i as u32).to_le_bytes()[..]));
            }
        }
    }

    #[test]
    fn shard_counter_conservation() {
        let store = KvStore::with_shards(
            StoreConfig {
                memory_budget: 16 << 20,
                capacity_items: 4000,
                shards: 8,
            },
            |cap| by_short_name("hor", cap).unwrap(),
        );
        for i in 0..1000u32 {
            store.set(format!("c{i}").as_bytes(), b"v").unwrap();
        }
        for i in (0..1000u32).step_by(3) {
            assert!(store.delete(format!("c{i}").as_bytes()));
        }
        let keys: Vec<String> = (0..1000u32).map(|i| format!("c{i}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        let mut resp = MGetResponse::new();
        let out = store.mget(&refs, &mut resp);

        let totals = store.totals();
        let per_shard = store.shard_stats();
        let mut summed = ShardStats::default();
        for s in &per_shard {
            summed.add(s);
        }
        assert_eq!(summed, totals, "per-shard sums must equal totals");
        assert_eq!(totals.sets, 1000);
        assert_eq!(totals.deletes, 334);
        assert_eq!(totals.mget_keys, 1000);
        assert_eq!(totals.mget_hits as usize, out.found);
        assert_eq!(totals.items, store.len());
        assert_eq!(store.len(), 1000 - 334);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let store = KvStore::with_shards(
            StoreConfig {
                shards: 16,
                ..StoreConfig::default()
            },
            |cap| by_short_name("memc3", cap).unwrap(),
        );
        let (mul, shift, mask) = store.shard_params();
        for i in 0..10_000u32 {
            let key = format!("route-{i}");
            let s = store.shard_of(key.as_bytes());
            assert!(s < 16);
            assert_eq!(s, store.shard_of(key.as_bytes()), "routing must be stable");
            assert_eq!(s, shard_route(hash_key(key.as_bytes()), mul, shift, mask));
        }
    }

    #[test]
    fn replace_updates_value() {
        for store in stores(100) {
            store.set(b"k", b"old").unwrap();
            store.set(b"k", b"new-and-longer-value").unwrap();
            assert_eq!(
                store.get(b"k").as_deref(),
                Some(&b"new-and-longer-value"[..])
            );
            assert_eq!(store.len(), 1, "{}", store.index_name());
        }
    }

    #[test]
    fn delete_removes() {
        for store in stores(100) {
            store.set(b"a", b"1").unwrap();
            assert!(store.delete(b"a"));
            assert!(!store.delete(b"a"));
            assert_eq!(store.get(b"a"), None);
            assert!(store.is_empty());
        }
    }

    #[test]
    fn mget_mixed_hits_and_misses() {
        for store in stores(100) {
            store.set(b"x", b"xval").unwrap();
            store.set(b"y", b"yval").unwrap();
            let mut resp = MGetResponse::new();
            let outcome = store.mget(&[b"x".as_ref(), b"nope".as_ref(), b"y".as_ref()], &mut resp);
            assert_eq!(outcome.found, 2, "{}", store.index_name());
            assert_eq!(resp.value(0), Some(&b"xval"[..]));
            assert_eq!(resp.value(1), None);
            assert_eq!(resp.value(2), Some(&b"yval"[..]));
            assert!(outcome.phases.total() > 0);
        }
    }

    #[test]
    fn eviction_under_memory_pressure() {
        let store = KvStore::new(
            Box::new(Memc3Index::with_capacity(100_000)),
            StoreConfig {
                memory_budget: 2 << 20, // 2 MiB: forces eviction
                capacity_items: 100_000,
                shards: 1,
            },
        );
        let value = vec![0xABu8; 1024];
        for i in 0..10_000u32 {
            store.set(format!("key-{i:06}").as_bytes(), &value).unwrap();
        }
        // The store survived and recent keys are readable.
        assert!(store.len() < 10_000, "eviction never triggered");
        assert_eq!(store.get(b"key-009999").as_deref(), Some(&value[..]));
        assert!(store.totals().evictions > 0, "evictions must be counted");
    }

    #[test]
    fn index_full_triggers_eviction_not_failure() {
        // A deliberately undersized index forces the IndexFull -> evict ->
        // retry path in set(); the store must keep absorbing writes.
        let store = KvStore::new(
            Box::new(Memc3Index::with_capacity(64)),
            StoreConfig {
                memory_budget: 8 << 20,
                capacity_items: 64,
                shards: 1,
            },
        );
        for i in 0..2000u32 {
            store
                .set(format!("spill-{i}").as_bytes(), b"v")
                .unwrap_or_else(|e| panic!("set {i}: {e}"));
        }
        // The cache retains roughly the index capacity and stays readable.
        assert!(store.len() <= 128, "len {}", store.len());
        assert_eq!(store.get(b"spill-1999").as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn response_buffer_reuse() {
        let store = &stores(100)[0];
        store.set(b"a", b"aaaa").unwrap();
        let mut resp = MGetResponse::new();
        store.mget(&[b"a".as_ref()], &mut resp);
        assert_eq!(resp.payload_bytes(), 4);
        store.mget(&[b"missing".as_ref()], &mut resp);
        assert_eq!(resp.payload_bytes(), 0);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp.value(0), None);
    }

    #[test]
    fn response_buffer_reusable_across_shard_counts() {
        // One MGetResponse driven against stores of different shard counts
        // must not carry stale partition scratch between them.
        let s1 = &sharded_stores(500, 1)[0];
        let s8 = &sharded_stores(500, 8)[0];
        s1.set(b"k", b"one").unwrap();
        s8.set(b"k", b"eight").unwrap();
        let mut resp = MGetResponse::new();
        s8.mget(&[b"k".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"eight"[..]));
        s1.mget(&[b"k".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"one"[..]));
        s8.mget(&[b"k".as_ref(), b"absent".as_ref()], &mut resp);
        assert_eq!(resp.value(0), Some(&b"eight"[..]));
        assert_eq!(resp.value(1), None);
    }

    #[test]
    fn concurrent_reads_while_writing() {
        use std::sync::Arc;
        let store = Arc::new(KvStore::new(
            Box::new(SimdIndex::with_capacity(
                SimdIndexKind::VerticalNway,
                10_000,
            )),
            StoreConfig::default(),
        ));
        for i in 0..2000u32 {
            store.set(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        // Reader and writer threads are all joined below; KvStore itself
        // never spawns threads (see the module docs), so the store drops
        // only after every thread's Arc clone is gone.
        let readers: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut resp = MGetResponse::new();
                    let mut found = 0;
                    for i in 0..500u32 {
                        let key = format!("k{}", (i * 7 + t) % 2000);
                        found += store.mget(&[key.as_bytes()], &mut resp).found;
                    }
                    found
                })
            })
            .collect();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 2000..2500u32 {
                    store.set(format!("k{i}").as_bytes(), b"w").unwrap();
                }
            })
        };
        for r in readers {
            assert_eq!(r.join().unwrap(), 500);
        }
        writer.join().unwrap();
    }

    #[test]
    fn drop_does_not_race_concurrent_use() {
        // Regression for the drop/shutdown contract: the main handle is
        // dropped while worker threads still hold Arc clones; the last
        // worker to finish performs the real drop. Must not deadlock,
        // panic, or leak a poisoned lock.
        use std::sync::Arc;
        for _ in 0..8 {
            let store = Arc::new(KvStore::with_shards(
                StoreConfig {
                    memory_budget: 8 << 20,
                    capacity_items: 2000,
                    shards: 4,
                },
                |cap| by_short_name("ver", cap).unwrap(),
            ));
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let store = Arc::clone(&store);
                    std::thread::spawn(move || {
                        let mut resp = MGetResponse::new();
                        for i in 0..200u32 {
                            let key = format!("d{}-{}", t, i);
                            store.set(key.as_bytes(), b"v").unwrap();
                            store.mget(&[key.as_bytes()], &mut resp);
                        }
                    })
                })
                .collect();
            drop(store); // main handle gone while threads are mid-flight
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
