//! Client/server transports: the simulated RDMA fabric and the trait both
//! real and simulated links implement.
//!
//! The paper's testbed uses InfiniBand EDR (100 Gb/s) with two-sided RDMA
//! SENDs. [`Fabric`] models that link in-process: crossbeam channels — real
//! queueing and thread hand-off — plus an analytic **wire model** that
//! charges each message the latency it would have cost on the modeled
//! link: `base_latency + bytes / bandwidth`. The client adds the modeled
//! request+response wire time to its measured processing time, so reported
//! end-to-end latencies are "EDR-shaped" while remaining deterministic on
//! a single machine (see DESIGN.md, substitutions).
//!
//! The [`Transport`] / [`ClientConn`] traits abstract over *which* link a
//! client drives: the fabric above, or the real TCP transport in
//! [`crate::net`]. The networked memslap client
//! ([`crate::memslap::run_memslap_over`]) is written against these traits
//! and runs unchanged over either.
//!
//! ## Backpressure
//!
//! The fabric's server-bound queue is **bounded** at
//! [`FabricConfig::queue_depth`] envelopes. A client that outruns the
//! server workers blocks in [`Fabric::send_request`] until a worker drains
//! an envelope — mirroring how a real RDMA send queue (or a TCP socket
//! buffer) pushes back on an over-driving sender instead of buffering
//! unboundedly. Reply queues stay unbounded: each client caps its own
//! in-flight window, so replies are naturally bounded by the pipeline
//! depth.

use std::io;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

/// A client's connection to a KVS server: a bidirectional stream of
/// encoded request/response frames (see [`crate::protocol`]).
///
/// Implementations may buffer writes; [`ClientConn::recv`] must flush any
/// buffered requests before blocking, so a send/recv loop can never
/// deadlock on its own unflushed window.
pub trait ClientConn: Send {
    /// Send one encoded request frame.
    ///
    /// Returns the *modeled* one-way wire nanoseconds for this frame — `0`
    /// for real transports, whose wire time shows up in measured latency.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying link (a simulated fabric errors only
    /// when the server is gone).
    fn send(&mut self, frame: Bytes) -> io::Result<u64>;

    /// Block for the next response frame.
    ///
    /// Returns the frame plus its modeled one-way wire nanoseconds (`0`
    /// for real transports).
    ///
    /// # Errors
    ///
    /// I/O errors, including clean connection close
    /// ([`io::ErrorKind::UnexpectedEof`]).
    fn recv(&mut self) -> io::Result<(Bytes, u64)>;

    /// Flush any buffered request frames toward the server.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying link.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Bound how long [`ClientConn::recv`] may block; `None` restores
    /// blocking forever. A timed-out `recv` returns
    /// [`io::ErrorKind::TimedOut`] or [`io::ErrorKind::WouldBlock`]
    /// (platform-dependent for real sockets); after a timeout mid-frame
    /// the connection may hold partial state, so callers should drop it
    /// rather than retry on the same stream.
    ///
    /// The default implementation ignores the timeout (suitable only for
    /// transports that cannot stall, e.g. in-process test doubles).
    ///
    /// # Errors
    ///
    /// I/O errors applying the timeout to the underlying link.
    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        let _ = timeout;
        Ok(())
    }
}

/// Something a KVS client can open connections to.
pub trait Transport: Send + Sync {
    /// Open a new connection.
    ///
    /// # Errors
    ///
    /// I/O errors establishing the connection.
    fn connect(&self) -> io::Result<Box<dyn ClientConn>>;
}

/// Wire cost model of the simulated link.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FabricConfig {
    /// One-way per-message base latency in nanoseconds.
    pub base_latency_ns: u64,
    /// Link bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// Capacity of the server-bound queue in messages (must be >= 1).
    /// Senders block when it is full — see the module docs on
    /// backpressure.
    pub queue_depth: usize,
}

/// Default server-bound queue capacity: deep enough that ordinary client
/// windows never stall, shallow enough that a runaway sender is paced.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

impl FabricConfig {
    /// InfiniBand EDR-like constants: ~1.5 µs one-way small-message latency,
    /// 100 Gb/s.
    pub fn ib_edr() -> Self {
        FabricConfig {
            base_latency_ns: 1_500,
            bandwidth_gbps: 100.0,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }

    /// A zero-cost fabric (pure in-process measurement).
    pub fn zero() -> Self {
        FabricConfig {
            base_latency_ns: 0,
            bandwidth_gbps: f64::INFINITY,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }

    /// Modeled one-way wire time for a message of `bytes` bytes.
    pub fn wire_ns(&self, bytes: usize) -> u64 {
        let serialization = (bytes as f64 * 8.0) / self.bandwidth_gbps; // ns at 1 Gb/s = 8ns/B
        self.base_latency_ns + serialization as u64
    }
}

/// A message in flight: payload plus the modeled one-way wire time and the
/// reply channel (the "queue pair" back to the client).
#[derive(Debug)]
pub struct Envelope {
    /// Encoded message bytes.
    pub payload: Bytes,
    /// Modeled one-way wire nanoseconds for this message.
    pub wire_ns: u64,
    /// Where responses should be sent (None for fire-and-forget).
    pub reply_to: Option<Sender<Envelope>>,
}

/// One endpoint pair of the simulated fabric.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    to_server: Sender<Envelope>,
    server_rx: Receiver<Envelope>,
}

impl Fabric {
    /// Create a fabric with the given wire model.
    ///
    /// # Panics
    ///
    /// Panics if `config.queue_depth == 0`.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.queue_depth >= 1, "queue_depth must be >= 1");
        let (to_server, server_rx) = bounded(config.queue_depth);
        Fabric {
            config,
            to_server,
            server_rx,
        }
    }

    /// The wire model.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The server-side receive queue (cloneable across workers).
    pub fn server_rx(&self) -> Receiver<Envelope> {
        self.server_rx.clone()
    }

    /// Send a request toward the server, charging the wire model. Blocks
    /// while the server-bound queue is full (backpressure).
    /// Returns the modeled one-way wire time.
    pub fn send_request(&self, payload: Bytes, reply_to: Option<Sender<Envelope>>) -> u64 {
        let wire_ns = self.config.wire_ns(payload.len());
        let _ = self.to_server.send(Envelope {
            payload,
            wire_ns,
            reply_to,
        });
        wire_ns
    }

    /// Send a response back over `reply`, charging the wire model.
    pub fn send_response(&self, reply: &Sender<Envelope>, payload: Bytes) {
        let wire_ns = self.config.wire_ns(payload.len());
        let _ = reply.send(Envelope {
            payload,
            wire_ns,
            reply_to: None,
        });
    }

    /// Create a client endpoint (reply channel pair).
    pub fn client_endpoint() -> (Sender<Envelope>, Receiver<Envelope>) {
        unbounded()
    }
}

/// A [`ClientConn`] over the simulated fabric: one private reply queue.
#[derive(Debug)]
pub struct FabricConn {
    fabric: Fabric,
    reply_tx: Sender<Envelope>,
    reply_rx: Receiver<Envelope>,
    recv_timeout: Option<std::time::Duration>,
}

impl ClientConn for FabricConn {
    fn send(&mut self, frame: Bytes) -> io::Result<u64> {
        Ok(self.fabric.send_request(frame, Some(self.reply_tx.clone())))
    }

    fn recv(&mut self) -> io::Result<(Bytes, u64)> {
        use crossbeam::channel::RecvTimeoutError;
        let disconnected =
            || io::Error::new(io::ErrorKind::UnexpectedEof, "fabric server disconnected");
        match self.recv_timeout {
            None => self
                .reply_rx
                .recv()
                .map_err(|_| disconnected())
                .map(|env| (env.payload, env.wire_ns)),
            Some(t) => match self.reply_rx.recv_timeout(t) {
                Ok(env) => Ok((env.payload, env.wire_ns)),
                Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "fabric recv timed out",
                )),
                Err(RecvTimeoutError::Disconnected) => Err(disconnected()),
            },
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.recv_timeout = timeout;
        Ok(())
    }
}

impl Transport for Fabric {
    fn connect(&self) -> io::Result<Box<dyn ClientConn>> {
        let (reply_tx, reply_rx) = Fabric::client_endpoint();
        Ok(Box::new(FabricConn {
            fabric: self.clone(),
            reply_tx,
            reply_rx,
            recv_timeout: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_model_edr_numbers() {
        let edr = FabricConfig::ib_edr();
        // Small message: dominated by base latency.
        assert_eq!(edr.wire_ns(0), 1_500);
        // 100 Gb/s = 12.5 GB/s: 12_500 B take ~1 µs on the wire.
        let t = edr.wire_ns(12_500);
        assert!((2_400..2_600).contains(&t), "{t}");
    }

    #[test]
    fn zero_fabric_is_free() {
        assert_eq!(FabricConfig::zero().wire_ns(1 << 20), 0);
    }

    #[test]
    fn request_response_flow() {
        let fabric = Fabric::new(FabricConfig::ib_edr());
        let (reply_tx, reply_rx) = Fabric::client_endpoint();
        let wire = fabric.send_request(Bytes::from_static(b"ping"), Some(reply_tx));
        assert!(wire >= 1_500);

        // "Server": echo the payload back.
        let env = fabric.server_rx().recv().unwrap();
        assert_eq!(&env.payload[..], b"ping");
        let reply = env.reply_to.expect("has reply channel");
        fabric.send_response(&reply, Bytes::from_static(b"pong"));

        let resp = reply_rx.recv().unwrap();
        assert_eq!(&resp.payload[..], b"pong");
        assert!(resp.wire_ns >= 1_500);
    }

    #[test]
    fn multiple_workers_share_rx() {
        let fabric = Fabric::new(FabricConfig::zero());
        for i in 0..10u8 {
            fabric.send_request(Bytes::copy_from_slice(&[i]), None);
        }
        let rx1 = fabric.server_rx();
        let rx2 = fabric.server_rx();
        let mut got = vec![];
        for _ in 0..5 {
            got.push(rx1.recv().unwrap().payload[0]);
            got.push(rx2.recv().unwrap().payload[0]);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let fabric = Fabric::new(FabricConfig {
            queue_depth: 2,
            ..FabricConfig::zero()
        });
        let rx = fabric.server_rx();
        let producer = {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                for i in 0..8u8 {
                    fabric.send_request(Bytes::copy_from_slice(&[i]), None);
                }
            })
        };
        // The producer can be at most queue_depth ahead; draining slowly
        // still yields every message in order.
        for i in 0..8u8 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert_eq!(rx.recv().unwrap().payload[0], i);
        }
        producer.join().unwrap();
    }

    #[test]
    fn fabric_recv_timeout_fires_and_clears() {
        let fabric = Fabric::new(FabricConfig::zero());
        let transport: &dyn Transport = &fabric;
        let mut conn = transport.connect().unwrap();
        conn.set_recv_timeout(Some(std::time::Duration::from_millis(10)))
            .unwrap();
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);

        // A reply that is already queued is returned despite the timeout.
        conn.send(Bytes::from_static(b"req")).unwrap();
        let env = fabric.server_rx().recv().unwrap();
        let reply = env.reply_to.expect("reply channel");
        fabric.send_response(&reply, Bytes::from_static(b"resp"));
        assert_eq!(&conn.recv().unwrap().0[..], b"resp");
    }

    #[test]
    fn fabric_conn_roundtrip_via_trait() {
        let fabric = Fabric::new(FabricConfig::ib_edr());
        let transport: &dyn Transport = &fabric;
        let mut conn = transport.connect().unwrap();
        let wire = conn.send(Bytes::from_static(b"hello")).unwrap();
        assert!(wire >= 1_500);
        conn.flush().unwrap();

        let env = fabric.server_rx().recv().unwrap();
        let reply = env.reply_to.expect("reply channel");
        fabric.send_response(&reply, Bytes::from_static(b"world"));
        let (payload, resp_wire) = conn.recv().unwrap();
        assert_eq!(&payload[..], b"world");
        assert!(resp_wire >= 1_500);
    }
}
