//! Simulated RDMA fabric.
//!
//! The paper's testbed uses InfiniBand EDR (100 Gb/s) with two-sided RDMA
//! SENDs. Here the transport is in-process crossbeam channels — real
//! queueing and thread hand-off — plus an analytic **wire model** that
//! charges each message the latency it would have cost on the modeled
//! link: `base_latency + bytes / bandwidth`. The client adds the modeled
//! request+response wire time to its measured processing time, so reported
//! end-to-end latencies are "EDR-shaped" while remaining deterministic on
//! a single machine (see DESIGN.md, substitutions).

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Wire cost model of the simulated link.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FabricConfig {
    /// One-way per-message base latency in nanoseconds.
    pub base_latency_ns: u64,
    /// Link bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
}

impl FabricConfig {
    /// InfiniBand EDR-like constants: ~1.5 µs one-way small-message latency,
    /// 100 Gb/s.
    pub fn ib_edr() -> Self {
        FabricConfig {
            base_latency_ns: 1_500,
            bandwidth_gbps: 100.0,
        }
    }

    /// A zero-cost fabric (pure in-process measurement).
    pub fn zero() -> Self {
        FabricConfig {
            base_latency_ns: 0,
            bandwidth_gbps: f64::INFINITY,
        }
    }

    /// Modeled one-way wire time for a message of `bytes` bytes.
    pub fn wire_ns(&self, bytes: usize) -> u64 {
        let serialization = (bytes as f64 * 8.0) / self.bandwidth_gbps; // ns at 1 Gb/s = 8ns/B
        self.base_latency_ns + serialization as u64
    }
}

/// A message in flight: payload plus the modeled one-way wire time and the
/// reply channel (the "queue pair" back to the client).
#[derive(Debug)]
pub struct Envelope {
    /// Encoded message bytes.
    pub payload: Bytes,
    /// Modeled one-way wire nanoseconds for this message.
    pub wire_ns: u64,
    /// Where responses should be sent (None for fire-and-forget).
    pub reply_to: Option<Sender<Envelope>>,
}

/// One endpoint pair of the simulated fabric.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    to_server: Sender<Envelope>,
    server_rx: Receiver<Envelope>,
}

impl Fabric {
    /// Create a fabric with the given wire model.
    pub fn new(config: FabricConfig) -> Self {
        let (to_server, server_rx) = unbounded();
        Fabric {
            config,
            to_server,
            server_rx,
        }
    }

    /// The wire model.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The server-side receive queue (cloneable across workers).
    pub fn server_rx(&self) -> Receiver<Envelope> {
        self.server_rx.clone()
    }

    /// Send a request toward the server, charging the wire model.
    /// Returns the modeled one-way wire time.
    pub fn send_request(&self, payload: Bytes, reply_to: Option<Sender<Envelope>>) -> u64 {
        let wire_ns = self.config.wire_ns(payload.len());
        let _ = self.to_server.send(Envelope {
            payload,
            wire_ns,
            reply_to,
        });
        wire_ns
    }

    /// Send a response back over `reply`, charging the wire model.
    pub fn send_response(&self, reply: &Sender<Envelope>, payload: Bytes) {
        let wire_ns = self.config.wire_ns(payload.len());
        let _ = reply.send(Envelope {
            payload,
            wire_ns,
            reply_to: None,
        });
    }

    /// Create a client endpoint (reply channel pair).
    pub fn client_endpoint() -> (Sender<Envelope>, Receiver<Envelope>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_model_edr_numbers() {
        let edr = FabricConfig::ib_edr();
        // Small message: dominated by base latency.
        assert_eq!(edr.wire_ns(0), 1_500);
        // 100 Gb/s = 12.5 GB/s: 12_500 B take ~1 µs on the wire.
        let t = edr.wire_ns(12_500);
        assert!((2_400..2_600).contains(&t), "{t}");
    }

    #[test]
    fn zero_fabric_is_free() {
        assert_eq!(FabricConfig::zero().wire_ns(1 << 20), 0);
    }

    #[test]
    fn request_response_flow() {
        let fabric = Fabric::new(FabricConfig::ib_edr());
        let (reply_tx, reply_rx) = Fabric::client_endpoint();
        let wire = fabric.send_request(Bytes::from_static(b"ping"), Some(reply_tx));
        assert!(wire >= 1_500);

        // "Server": echo the payload back.
        let env = fabric.server_rx().recv().unwrap();
        assert_eq!(&env.payload[..], b"ping");
        let reply = env.reply_to.expect("has reply channel");
        fabric.send_response(&reply, Bytes::from_static(b"pong"));

        let resp = reply_rx.recv().unwrap();
        assert_eq!(&resp.payload[..], b"pong");
        assert!(resp.wire_ns >= 1_500);
    }

    #[test]
    fn multiple_workers_share_rx() {
        let fabric = Fabric::new(FabricConfig::zero());
        for i in 0..10u8 {
            fabric.send_request(Bytes::copy_from_slice(&[i]), None);
        }
        let rx1 = fabric.server_rx();
        let rx2 = fabric.server_rx();
        let mut got = vec![];
        for _ in 0..5 {
            got.push(rx1.recv().unwrap().payload[0]);
            got.push(rx2.recv().unwrap().payload[0]);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
    }
}
