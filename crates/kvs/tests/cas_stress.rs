//! The CAS linearizability oracle: N writer threads race
//! compare-and-swap on a small set of hot keys, every writer logging the
//! versions it wins. CAS linearizes at the shard write lock (DESIGN.md
//! §13), so the contract is exact, not statistical:
//!
//! * **exactly one winner per version** — no two successful swaps on a
//!   key may claim the same new version,
//! * **no lost updates** — the version chain is contiguous: a key ending
//!   at version `v` saw exactly `v - 1` successful swaps (the preload is
//!   version 1), and the final value is the one written by the highest
//!   winning version,
//! * a successful swap always lands at `expected + 1`, and conflicts
//!   always carry a version other writers can make progress against.
//!
//! The matrix runs over every index family and both read modes
//! (`READ_MODE`, or both when unset — `get_v` always reads under the
//! shard lock, but the optimistic mode changes the surrounding traffic).
//! Seed count scales with `SHARD_STRESS_SEEDS` (default 3; CI runs 100).

use std::collections::HashMap;
use std::sync::Mutex;

use simdht_kvs::index::by_short_name;
use simdht_kvs::store::{CasOutcome, KvStore, ReadMode, StoreConfig};

const N_WRITERS: usize = 4;
const HOT_KEYS: usize = 6;
const ROUNDS: usize = 300;

fn seeds() -> u64 {
    std::env::var("SHARD_STRESS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Which read modes to exercise: `READ_MODE` picks one, unset runs both.
fn modes() -> Vec<ReadMode> {
    match std::env::var("READ_MODE") {
        Ok(s) => vec![ReadMode::parse(&s)
            .unwrap_or_else(|| panic!("READ_MODE={s}: expected locked | optimistic"))],
        Err(_) => vec![ReadMode::Locked, ReadMode::Optimistic],
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key(i: usize) -> Vec<u8> {
    format!("cas-hot-{i:02}").into_bytes()
}

/// The value a winning swap writes: encodes (writer, version) so the
/// final state can be traced back to exactly one win.
fn winning_value(writer: usize, version: u64) -> Vec<u8> {
    format!("w{writer:02}-v{version:08}-payload").into_bytes()
}

fn run_round(which: &str, mode: ReadMode, seed: u64) {
    let store = KvStore::with_shards(
        StoreConfig {
            memory_budget: 16 << 20,
            capacity_items: 1024,
            shards: 2,
            prefetch_depth: None,
            read_mode: mode,
        },
        |cap| by_short_name(which, cap).expect("known index"),
    );
    for i in 0..HOT_KEYS {
        let v = store.set_v(&key(i), b"genesis", 0).expect("preload");
        assert_eq!(v, 1, "preload starts the chain at version 1");
    }

    // Every win recorded as key -> {version -> writer}; the mutex is
    // outside the contended path (winners only).
    let wins: Mutex<HashMap<usize, HashMap<u64, usize>>> = Mutex::new(HashMap::new());

    std::thread::scope(|s| {
        for w in 0..N_WRITERS {
            let store = &store;
            let wins = &wins;
            s.spawn(move || {
                let mut rng = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(w as u64 + 1);
                for _ in 0..ROUNDS {
                    let i = (splitmix64(&mut rng) as usize) % HOT_KEYS;
                    let k = key(i);
                    let (_, current) = store.get_v(&k).expect("hot keys are never deleted");
                    assert!(current >= 1, "versions start at 1");
                    // Widen the read-then-swap window so the race is real
                    // even on a single-CPU runner where threads would
                    // otherwise complete whole slices back to back.
                    std::thread::yield_now();
                    match store.cas(&k, current, &winning_value(w, current + 1), 0) {
                        Ok(CasOutcome::Stored(new_version)) => {
                            assert_eq!(
                                new_version,
                                current + 1,
                                "a successful swap lands at expected + 1"
                            );
                            let mut g = wins.lock().expect("wins lock");
                            let prior = g.entry(i).or_default().insert(new_version, w);
                            assert_eq!(
                                prior, None,
                                "two writers won key {i} version {new_version}"
                            );
                        }
                        Ok(CasOutcome::Conflict(at)) => {
                            // Someone else advanced the chain between our
                            // read and our swap; their version must be
                            // usable (>= 1) and different from what we
                            // presented.
                            assert!(at >= 1, "conflict against version 0");
                            assert_ne!(at, current, "conflict at the matching version");
                        }
                        Ok(CasOutcome::NotFound) => panic!("hot key {i} vanished"),
                        Err(e) => panic!("roomy store refused a cas: {e:?}"),
                    }
                }
            });
        }
    });

    // Post-mortem: contiguous version chains, one winner per link, and a
    // final value written by the highest winner.
    let wins = wins.into_inner().expect("wins lock");
    let mut total_wins = 0u64;
    for i in 0..HOT_KEYS {
        let (final_value, final_version) = store.get_v(&key(i)).expect("hot key survives");
        let key_wins = wins.get(&i).cloned().unwrap_or_default();
        assert_eq!(
            key_wins.len() as u64,
            final_version - 1,
            "key {i}: ended at version {final_version} but {} swaps won — lost updates",
            key_wins.len()
        );
        for v in 2..=final_version {
            assert!(
                key_wins.contains_key(&v),
                "key {i}: version {v} has no winner — the chain has a hole"
            );
        }
        if final_version > 1 {
            let winner = key_wins[&final_version];
            assert_eq!(
                final_value,
                winning_value(winner, final_version),
                "key {i}: final value is not the highest winner's write"
            );
        } else {
            assert_eq!(final_value, b"genesis", "key {i}: untouched key changed");
        }
        total_wins += key_wins.len() as u64;
    }
    assert_eq!(
        store.totals().cas_ok,
        total_wins,
        "store counted different wins than the writers observed"
    );
    assert!(
        total_wins > 0,
        "{which}/{mode:?}/seed {seed}: no contention case ever won — vacuous run"
    );
    // With 4 writers racing read-then-swap on 6 keys, conflicts are all
    // but guaranteed; their absence would mean the race never happened.
    assert!(
        store.totals().cas_conflicts > 0,
        "{which}/{mode:?}/seed {seed}: no conflicts — writers never actually raced"
    );
}

#[test]
fn cas_has_exactly_one_winner_per_version_and_no_lost_updates() {
    for seed in 0..seeds() {
        for which in ["memc3", "hor", "ver", "dpdk", "local"] {
            for mode in modes() {
                run_round(which, mode, seed);
            }
        }
    }
}
