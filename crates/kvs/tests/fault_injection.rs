//! The fault matrix: a live `Kvsd` daemon behind a seeded
//! [`FaultyTransport`], driven by the resilient [`RetryClient`] across
//! every fault kind × scenario × seed. The contract under test is the
//! tentpole of the failure model:
//!
//! * the client **never hangs** (a watchdog thread enforces it),
//! * the client **never observes a wrong value** — every Multi-Get
//!   either matches the oracle exactly or fails with a clean typed
//!   error, and every Set lands in a state the oracle admits,
//! * the versioned point verbs honor their idempotency classes: Delete
//!   and Touch are retried (so any completed answer is a confirmation),
//!   CAS is never resent (so its oracle is a possible-values set that an
//!   uncertain swap joins permanently),
//! * a no-fault `FaultSpec` is a byte-identical passthrough (checked
//!   differentially against plain TCP on the same daemon),
//! * killing the daemon mid-pipeline yields partial results from the
//!   networked memslap driver, not an abort.
//!
//! Seed count scales with the `FAULT_SEEDS` env var (default 8; CI runs
//! 100, and ≥64 satisfies the acceptance matrix).
//!
//! The daemon under test is selected by `FAULT_SERVER`: `thread`
//! (default) runs the blocking thread-per-connection [`Kvsd`], `reactor`
//! runs the event-driven coalescing [`ReactorServer`] — the whole matrix
//! holds for both serving architectures. `READ_MODE` (`locked` |
//! `optimistic`) likewise selects the store's read path, so the matrix
//! also covers seqlock optimistic reads under transport faults.

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use simdht_kvs::client::{RetryClient, RetryPolicy, SetOutcome};
use simdht_kvs::fault::{FaultKind, FaultPlan, FaultSpec, FaultyTransport};
use simdht_kvs::index::by_short_name;
use simdht_kvs::kvsd::Kvsd;
use simdht_kvs::memslap::{run_memslap_over, NetMemslapConfig};
use simdht_kvs::net::TcpTransport;
use simdht_kvs::protocol::{Request, Response};
use simdht_kvs::reactor::ReactorServer;
use simdht_kvs::store::{KvStore, ReadMode, StoreConfig};
use simdht_kvs::transport::Transport;
use simdht_workload::{KvWorkload, KvWorkloadSpec};

fn fault_seeds() -> u64 {
    std::env::var("FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Whichever serving architecture `FAULT_SERVER` selects, behind the
/// interface the matrix needs.
enum Daemon {
    Thread(Kvsd),
    Reactor(ReactorServer),
}

impl Daemon {
    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            Daemon::Thread(k) => k.local_addr(),
            Daemon::Reactor(r) => r.local_addr(),
        }
    }

    fn stats(&self) -> Arc<simdht_kvs::server::ServerStats> {
        match self {
            Daemon::Thread(k) => k.stats(),
            Daemon::Reactor(r) => r.stats(),
        }
    }

    fn shutdown(self) {
        match self {
            Daemon::Thread(k) => {
                k.shutdown();
            }
            Daemon::Reactor(r) => {
                r.shutdown();
            }
        }
    }
}

fn reactor_mode() -> bool {
    match std::env::var("FAULT_SERVER").as_deref() {
        Ok("reactor") => true,
        Ok("thread") | Err(_) => false,
        Ok(other) => panic!("FAULT_SERVER={other}: expected thread | reactor"),
    }
}

/// `READ_MODE` selects the store-side read path the whole fault matrix
/// runs against: `locked` (default) or `optimistic`.
fn read_mode() -> ReadMode {
    match std::env::var("READ_MODE") {
        Ok(s) => ReadMode::parse(&s)
            .unwrap_or_else(|| panic!("READ_MODE={s}: expected locked | optimistic")),
        Err(_) => ReadMode::Locked,
    }
}

/// `INDEX` selects the index family the whole fault matrix runs against
/// (any `by_short_name` spelling; default `memc3`). Validated eagerly so
/// a typo fails the suite instead of silently testing the default.
fn index_name() -> String {
    let name = std::env::var("INDEX").unwrap_or_else(|_| "memc3".to_string());
    assert!(
        by_short_name(&name, 64).is_some(),
        "INDEX={name}: expected a short index name known to by_short_name",
    );
    name
}

fn spawn_daemon(capacity: usize) -> (Daemon, Arc<KvStore>) {
    let store = Arc::new(KvStore::new(
        by_short_name(&index_name(), capacity).expect("known index"),
        StoreConfig {
            memory_budget: 4 << 20,
            capacity_items: capacity,
            shards: 1,
            prefetch_depth: None,
            read_mode: read_mode(),
        },
    ));
    let daemon = if reactor_mode() {
        Daemon::Reactor(
            ReactorServer::bind(Arc::clone(&store), "127.0.0.1:0").expect("bind ephemeral port"),
        )
    } else {
        Daemon::Thread(Kvsd::bind(Arc::clone(&store), "127.0.0.1:0").expect("bind ephemeral port"))
    };
    (daemon, store)
}

/// Retry policy tuned for the matrix: timeouts short enough that a
/// dropped frame costs ~80 ms, retries generous enough that most
/// operations eventually land.
fn matrix_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 6,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        jitter: 0.5,
        recv_timeout: Some(Duration::from_millis(80)),
    }
}

fn spec_for(kind: FaultKind, seed: u64) -> FaultSpec {
    let p = match kind {
        FaultKind::Drop => 0.05,
        FaultKind::Delay => 0.25,
        FaultKind::Truncate => 0.05,
        FaultKind::Corrupt => 0.05,
        FaultKind::Close => 0.03,
    };
    FaultSpec::only(seed, kind, p)
}

/// Run `f` on its own thread and panic if it neither finishes nor
/// panics within the deadline — a hang is a first-class failure here,
/// not a CI timeout.
fn with_watchdog(label: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(()) => handle.join().expect("case thread"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The case panicked: join to propagate the original message.
            handle.join().expect("case thread panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: hang detected (watchdog fired after 60s)");
        }
    }
}

fn key(i: usize) -> Bytes {
    Bytes::from(format!("fault-key-{i:03}").into_bytes())
}

fn value(seed: u64, i: usize) -> Bytes {
    Bytes::from(format!("value-{seed:08x}-{i:02}").into_bytes())
}

#[derive(Copy, Clone, Debug)]
enum Scenario {
    /// All writes flow through the faulty wrapper; a clean client
    /// verifies the surviving state afterwards.
    Preload,
    /// Same contract for the batched write verb: all writes flow as
    /// 4-pair `SetMulti` frames through the faulty wrapper. The batch is
    /// non-idempotent and never retried, so an uncertain batch may have
    /// landed in full, in part, or not at all — each key independently
    /// absent-or-exact afterwards.
    BatchPreload,
    /// Read-only Multi-Gets over a directly-seeded store; every
    /// successful response must match the store exactly.
    Mget,
    /// Interleaved Sets and Multi-Gets with a possible-values oracle
    /// tracking each key through uncertain outcomes.
    Mixed,
    /// The idempotent point verbs under faults: Deletes (retried, so any
    /// `Ok` — `true` *or* `false` — proves the key is gone) on half the
    /// keys and Touches on the other half, verified over a clean
    /// connection afterwards.
    PointVerbs,
    /// Compare-and-swap under faults: never resent, so the oracle is a
    /// possible-values set per key that grows on `Stored` *and* on
    /// `Uncertain` (a delayed frame may still land after later reads) —
    /// and the daemon must never answer `NotFound`/`Rejected`/`Shed` for
    /// a live key on an unshedding server.
    Cas,
}

const N_KEYS: usize = 12;

fn run_case(kind: FaultKind, scenario: Scenario, seed: u64) {
    let (kvsd, store) = spawn_daemon(256);
    let tcp = TcpTransport::new(kvsd.local_addr()).expect("loopback transport");
    let plan = Arc::new(FaultPlan::new(spec_for(kind, seed)));
    let faulty = FaultyTransport::new(&tcp, Arc::clone(&plan));
    let mut client = RetryClient::new(&faulty, matrix_policy(), seed);

    match scenario {
        Scenario::Preload => {
            // Oracle per key: Some(v) = confirmed stored; None = the
            // write may or may not have landed (lost response).
            let mut oracle: Vec<Option<bool>> = Vec::new();
            for i in 0..N_KEYS {
                match client.set(key(i), value(seed, i)) {
                    Ok(SetOutcome::Stored) => oracle.push(Some(true)),
                    // No shedding is configured and the budget fits, so
                    // Shed/Rejected would be wrong answers, not noise.
                    Ok(SetOutcome::Shed) | Ok(SetOutcome::Rejected) => {
                        panic!("unfaulted daemon refused a set")
                    }
                    Ok(SetOutcome::Uncertain) => oracle.push(None),
                    // Connect failures cannot happen against a live
                    // loopback daemon; surface anything else.
                    Err(e) => panic!("set returned a connect error: {e}"),
                }
            }
            // Verify over a clean connection: confirmed writes must be
            // present and exact; uncertain writes are absent or exact.
            let mut verify = RetryClient::new(&tcp, RetryPolicy::default(), seed ^ 1);
            let keys: Vec<Bytes> = (0..N_KEYS).map(key).collect();
            let entries = verify.mget(&keys).expect("clean verify mget");
            for (i, certain) in oracle.iter().enumerate() {
                match (certain, &entries[i]) {
                    (Some(true), Some(v)) => assert_eq!(v, &value(seed, i), "key {i}"),
                    (Some(true), None) => panic!("confirmed set of key {i} vanished"),
                    (None, Some(v)) => assert_eq!(v, &value(seed, i), "uncertain key {i}"),
                    (None, None) => {} // lost before the store: fine
                    (Some(false), _) => unreachable!(),
                }
            }
        }
        Scenario::BatchPreload => {
            // Oracle per key, exactly as in Preload; the batch verb just
            // changes how outcomes arrive — one vector per 4-pair frame.
            let mut oracle: Vec<Option<bool>> = Vec::new();
            let indices: Vec<usize> = (0..N_KEYS).collect();
            for chunk in indices.chunks(4) {
                let pairs: Vec<(Bytes, Bytes)> =
                    chunk.iter().map(|&i| (key(i), value(seed, i))).collect();
                match client.set_multi(&pairs) {
                    Ok(outcomes) => {
                        assert_eq!(outcomes.len(), pairs.len(), "one outcome per pair");
                        for o in outcomes {
                            match o {
                                SetOutcome::Stored => oracle.push(Some(true)),
                                SetOutcome::Uncertain => oracle.push(None),
                                SetOutcome::Shed | SetOutcome::Rejected => {
                                    panic!("unfaulted daemon refused a batched set")
                                }
                            }
                        }
                    }
                    Err(e) => panic!("set_multi returned a connect error: {e}"),
                }
            }
            let mut verify = RetryClient::new(&tcp, RetryPolicy::default(), seed ^ 1);
            let keys: Vec<Bytes> = (0..N_KEYS).map(key).collect();
            let entries = verify.mget(&keys).expect("clean verify mget");
            for (i, certain) in oracle.iter().enumerate() {
                match (certain, &entries[i]) {
                    (Some(true), Some(v)) => assert_eq!(v, &value(seed, i), "key {i}"),
                    (Some(true), None) => panic!("confirmed batched set of key {i} vanished"),
                    (None, Some(v)) => assert_eq!(v, &value(seed, i), "uncertain key {i}"),
                    (None, None) => {} // batch (or this suffix of it) lost: fine
                    (Some(false), _) => unreachable!(),
                }
            }
        }
        Scenario::Mget => {
            for i in 0..N_KEYS {
                store.set(&key(i), &value(seed, i)).expect("direct preload");
            }
            let mut clean_failures = 0u32;
            for round in 0..10usize {
                let mut keys: Vec<Bytes> = (0..3).map(|j| key((round * 3 + j) % N_KEYS)).collect();
                keys.push(Bytes::from(format!("absent-{round}").into_bytes()));
                match client.mget(&keys) {
                    Ok(entries) => {
                        assert_eq!(entries.len(), 4, "round {round}");
                        for (j, entry) in entries.iter().take(3).enumerate() {
                            let i = (round * 3 + j) % N_KEYS;
                            assert_eq!(
                                entry.as_ref(),
                                Some(&value(seed, i)),
                                "round {round} slot {j}: wrong or missing value"
                            );
                        }
                        assert_eq!(entries[3], None, "round {round}: phantom hit");
                    }
                    // Clean typed failure after exhausted retries is an
                    // allowed outcome — a wrong value never is.
                    Err(_) => clean_failures += 1,
                }
            }
            // With max_retries=6 the whole run collapsing would point at
            // a wedged client rather than bad luck.
            assert!(clean_failures < 10, "every single round failed");
        }
        Scenario::Mixed => {
            // Possible-values oracle: a key's observable value must be a
            // member of its set. Never collapse on reads — an uncertain
            // Set buffered in a dying server handler may still land
            // *after* a later read on a fresh connection.
            let mut oracle: HashMap<usize, HashSet<Bytes>> = HashMap::new();
            for i in 0..N_KEYS {
                store.set(&key(i), &value(seed, i)).expect("direct preload");
                oracle.entry(i).or_default().insert(value(seed, i));
            }
            for t in 0..24usize {
                let i = t % N_KEYS;
                if t % 3 == 0 {
                    let fresh = Bytes::from(format!("v{t:02}-{seed:016x}").into_bytes());
                    match client.set(key(i), fresh.clone()) {
                        Ok(SetOutcome::Stored) | Ok(SetOutcome::Uncertain) => {
                            oracle.get_mut(&i).expect("preloaded").insert(fresh);
                        }
                        Ok(SetOutcome::Shed) | Ok(SetOutcome::Rejected) => {
                            panic!("unfaulted daemon refused a set")
                        }
                        Err(e) => panic!("set returned a connect error: {e}"),
                    }
                } else {
                    let keys = [key(i), key((i + 5) % N_KEYS)];
                    if let Ok(entries) = client.mget(&keys) {
                        for (slot, k) in [i, (i + 5) % N_KEYS].into_iter().enumerate() {
                            let got = entries[slot]
                                .as_ref()
                                .unwrap_or_else(|| panic!("preloaded key {k} read as absent"));
                            assert!(
                                oracle[&k].contains(got),
                                "key {k} returned a value the oracle never admitted"
                            );
                        }
                    }
                }
            }
        }
        Scenario::PointVerbs => {
            for i in 0..N_KEYS {
                store.set(&key(i), &value(seed, i)).expect("direct preload");
            }
            // Deletes on even keys. The verb is idempotent and retried,
            // which makes *both* Ok answers confirmations: `true` is the
            // delete landing, and `false` (NotFound on a preloaded key
            // nobody else touches) can only mean an earlier attempt's
            // delete landed and its response was lost. Only a clean typed
            // error after exhausted retries leaves the key uncertain.
            let mut confirmed_gone = [false; N_KEYS];
            for i in (0..N_KEYS).step_by(2) {
                // A clean error leaves the key uncertain: absent or
                // untouched, checked below.
                if client.delete(key(i)).is_ok() {
                    confirmed_gone[i] = true;
                }
            }
            // Touches on odd keys: retried like deletes, and on a live
            // key that nothing deletes or expires, a completed touch must
            // find it — `Ok(false)` would be the daemon lying.
            for i in (1..N_KEYS).step_by(2) {
                match client.touch(key(i), 3600) {
                    Ok(true) => {}
                    Ok(false) => panic!("touch reported live key {i} as missing"),
                    Err(_) => {} // clean failure after retries: fine
                }
            }
            let mut verify = RetryClient::new(&tcp, RetryPolicy::default(), seed ^ 1);
            let keys: Vec<Bytes> = (0..N_KEYS).map(key).collect();
            let entries = verify.mget(&keys).expect("clean verify mget");
            for (i, entry) in entries.iter().enumerate() {
                if i % 2 == 0 {
                    if confirmed_gone[i] {
                        assert_eq!(entry, &None, "confirmed-deleted key {i} came back");
                    } else if let Some(v) = entry {
                        // Uncertain delete: the key is gone or untouched,
                        // never a different value.
                        assert_eq!(v, &value(seed, i), "uncertain-deleted key {i}");
                    }
                } else {
                    // Touch must never change (or lose) the value.
                    assert_eq!(
                        entry.as_ref(),
                        Some(&value(seed, i)),
                        "touched key {i} lost or changed its value"
                    );
                }
            }
        }
        Scenario::Cas => {
            use simdht_kvs::client::CasNetOutcome;

            // Possible-values oracle, as in Mixed, but CAS is never
            // resent: an Uncertain swap stays in the set forever because
            // a delayed request frame can still apply after later reads.
            let mut oracle: Vec<HashSet<Bytes>> = Vec::new();
            let mut expected: Vec<u64> = vec![1; N_KEYS];
            for i in 0..N_KEYS {
                store.set(&key(i), &value(seed, i)).expect("direct preload");
                oracle.push(HashSet::from([value(seed, i)]));
            }
            for t in 0..24usize {
                let i = t % N_KEYS;
                let fresh = Bytes::from(format!("cas{t:02}-{seed:016x}").into_bytes());
                match client.cas(key(i), expected[i], fresh.clone(), 0) {
                    Ok(CasNetOutcome::Stored(v)) => {
                        // A successful swap linearizes at the expected
                        // version exactly; the store bumps by one.
                        assert_eq!(v, expected[i] + 1, "key {i}: stored at the wrong version");
                        oracle[i].insert(fresh);
                        expected[i] = v;
                    }
                    Ok(CasNetOutcome::Conflict(v)) => {
                        // The only other writer is our own uncertain past
                        // self, so adopt the reported current version for
                        // the next attempt; the value set is unchanged.
                        assert!(v >= 1, "key {i}: conflict against version 0");
                        expected[i] = v;
                    }
                    Ok(CasNetOutcome::NotFound) => {
                        panic!("key {i}: cas reported a live key as missing")
                    }
                    Ok(CasNetOutcome::Rejected) => panic!("unfaulted daemon rejected a cas"),
                    Ok(CasNetOutcome::Shed) => panic!("unshedding daemon shed a cas"),
                    Ok(CasNetOutcome::Uncertain) => {
                        oracle[i].insert(fresh);
                    }
                    Err(e) => panic!("cas returned a connect error: {e}"),
                }
            }
            let mut verify = RetryClient::new(&tcp, RetryPolicy::default(), seed ^ 1);
            let keys: Vec<Bytes> = (0..N_KEYS).map(key).collect();
            let entries = verify.mget(&keys).expect("clean verify mget");
            for (i, entry) in entries.iter().enumerate() {
                let got = entry
                    .as_ref()
                    .unwrap_or_else(|| panic!("preloaded key {i} read as absent"));
                assert!(
                    oracle[i].contains(got),
                    "key {i} holds a value the oracle never admitted"
                );
                let (_, version) = store.get_v(&key(i)).expect("live key has a version");
                assert!(version >= 1, "key {i}: versions start at 1");
            }
        }
    }

    drop(client);
    kvsd.shutdown();
}

#[test]
fn fault_matrix_never_hangs_or_lies() {
    let seeds = fault_seeds();
    for kind in [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Close,
    ] {
        for scenario in [
            Scenario::Preload,
            Scenario::BatchPreload,
            Scenario::Mget,
            Scenario::Mixed,
            Scenario::PointVerbs,
            Scenario::Cas,
        ] {
            for seed in 0..seeds {
                let label = format!("{kind:?}/{scenario:?}/seed={seed}");
                with_watchdog(&label, move || run_case(kind, scenario, seed));
            }
        }
    }
}

/// Differential check of the no-fault passthrough: the same request
/// sequence through `FaultSpec::none` and through plain TCP, against the
/// same daemon, must produce byte-identical response frames.
#[test]
fn no_fault_plan_matches_plain_tcp_byte_for_byte() {
    let (kvsd, store) = spawn_daemon(64);
    for i in 0..8usize {
        store.set(&key(i), &value(7, i)).expect("preload");
    }
    let tcp = TcpTransport::new(kvsd.local_addr()).expect("transport");
    let plan = Arc::new(FaultPlan::new(FaultSpec::none(42)));
    let faulty = FaultyTransport::new(&tcp, Arc::clone(&plan));

    let requests: Vec<Bytes> = vec![
        Request::MGet {
            id: 1,
            keys: (0..8).map(key).collect(),
        }
        .encode(),
        Request::Set {
            id: 2,
            key: key(3),
            value: value(7, 3), // overwrite with the identical value
        }
        .encode(),
        Request::MGet {
            id: 3,
            keys: vec![key(3), Bytes::from_static(b"definitely-absent")],
        }
        .encode(),
        Request::SetMulti {
            id: 4,
            // Overwrite with the identical values so both drives see the
            // same store whatever order they run in.
            pairs: vec![(key(4), value(7, 4)), (key(5), value(7, 5))],
        }
        .encode(),
        Request::MGet {
            id: 5,
            keys: vec![key(4), key(5)],
        }
        .encode(),
    ];

    let drive = |transport: &dyn Transport| -> Vec<Vec<u8>> {
        let mut conn = transport.connect().expect("connect");
        let mut frames = Vec::new();
        for frame in &requests {
            conn.send(frame.clone()).expect("send");
            conn.flush().expect("flush");
            let (payload, _) = conn.recv().expect("recv");
            // Decode as a sanity check, then keep the raw bytes.
            Response::decode(payload.clone()).expect("decode");
            frames.push(payload.to_vec());
        }
        frames
    };

    let plain = drive(&tcp);
    let wrapped = drive(&faulty);
    assert_eq!(plain, wrapped, "no-fault wrapper altered bytes");
    assert_eq!(plan.counters().total(), 0, "no-fault plan injected faults");
    kvsd.shutdown();
}

/// Differential check of the two serving architectures: with faults
/// disabled, the same pipelined request sequence against a blocking
/// `Kvsd` and against a coalescing `ReactorServer` — both over identical
/// store contents — must produce byte-identical response frames in the
/// same per-connection order. This pins the reactor's scatter path
/// (`MGetResponse::append_subframe` over a shared batch buffer) to the
/// blocking server's per-request `seal_frame` wire format.
#[test]
fn reactor_and_thread_servers_match_byte_for_byte() {
    let mk_store = || {
        let store = Arc::new(KvStore::new(
            by_short_name("memc3", 64).expect("known index"),
            StoreConfig {
                memory_budget: 4 << 20,
                capacity_items: 64,
                shards: 1,
                prefetch_depth: None,
                read_mode: read_mode(),
            },
        ));
        for i in 0..8usize {
            store.set(&key(i), &value(7, i)).expect("preload");
        }
        store
    };

    // Pipelined mix: wide MGet, overlapping MGets, a Set, a re-read of
    // the overwritten key, an all-miss MGet, and an empty MGet.
    let requests: Vec<Bytes> = vec![
        Request::MGet {
            id: 1,
            keys: (0..8).map(key).collect(),
        }
        .encode(),
        Request::MGet {
            id: 2,
            keys: vec![key(1), Bytes::from_static(b"nope"), key(2)],
        }
        .encode(),
        Request::Set {
            id: 3,
            key: key(3),
            value: Bytes::from_static(b"fresh-value"),
        }
        .encode(),
        Request::MGet {
            id: 4,
            keys: vec![key(3)],
        }
        .encode(),
        Request::MGet {
            id: 5,
            keys: vec![Bytes::from_static(b"miss-a"), Bytes::from_static(b"miss-b")],
        }
        .encode(),
        Request::MGet {
            id: 6,
            keys: vec![],
        }
        .encode(),
        // A batched write mid-pipeline, then a re-read of its keys: pins
        // the reactor's write-coalescing scatter (per-request ranges over
        // one shared `set_multi` batch) to the blocking server's answers.
        Request::SetMulti {
            id: 7,
            pairs: vec![
                (key(6), Bytes::from_static(b"batched-six")),
                (
                    Bytes::from_static(b"batch-new"),
                    Bytes::from_static(b"born"),
                ),
                (key(6), Bytes::from_static(b"batched-six-final")),
            ],
        }
        .encode(),
        Request::MGet {
            id: 8,
            keys: vec![key(6), Bytes::from_static(b"batch-new")],
        }
        .encode(),
        Request::SetMulti {
            id: 9,
            pairs: vec![],
        }
        .encode(),
    ];

    let drive = |addr: std::net::SocketAddr| -> Vec<Vec<u8>> {
        let tcp = TcpTransport::new(addr).expect("transport");
        let mut conn = tcp.connect().expect("connect");
        // Send the whole pipeline first, then collect: the reactor must
        // preserve per-connection order across its coalescing buffer.
        for frame in &requests {
            conn.send(frame.clone()).expect("send");
        }
        conn.flush().expect("flush");
        (0..requests.len())
            .map(|_| {
                let (payload, _) = conn.recv().expect("recv");
                Response::decode(payload.clone()).expect("decode");
                payload.to_vec()
            })
            .collect()
    };

    let kvsd = Kvsd::bind(mk_store(), "127.0.0.1:0").expect("bind thread server");
    let thread_frames = drive(kvsd.local_addr());
    kvsd.shutdown();

    let reactor = ReactorServer::bind(mk_store(), "127.0.0.1:0").expect("bind reactor server");
    let reactor_frames = drive(reactor.local_addr());
    reactor.shutdown();

    assert_eq!(
        thread_frames, reactor_frames,
        "serving architectures diverged on the wire"
    );
}

/// Kill the daemon while the networked memslap driver is mid-pipeline:
/// the run must come back `Ok` with partial results — completed requests
/// counted, abandoned ones reported as failed — rather than aborting.
#[test]
fn daemon_killed_mid_pipeline_yields_partial_results() {
    with_watchdog("kill-mid-pipeline", || {
        let (kvsd, _store) = spawn_daemon(2048);
        let addr = kvsd.local_addr();
        let stats = kvsd.stats();

        let workload = KvWorkload::generate(&KvWorkloadSpec {
            n_items: 1000,
            n_requests: 20_000,
            mget_size: 8,
            key_bytes: 16,
            value_bytes: 24,
            ..KvWorkloadSpec::default()
        });
        let config = NetMemslapConfig {
            connections: 2,
            pipeline_depth: 8,
            set_fraction: 0.0,
            write_frac: 0.0,
            delete_frac: 0.0,
            cas_frac: 0.0,
            ttl_secs: 0,
            preload: true,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                jitter: 0.5,
                recv_timeout: Some(Duration::from_millis(250)),
            },
            faults: None,
        };

        std::thread::scope(|s| {
            let run = s.spawn(|| {
                let transport = TcpTransport::new(addr).expect("transport");
                run_memslap_over(&transport, &workload, &config)
            });
            // Wait until the Multi-Get phase is demonstrably underway,
            // then pull the daemon out from under it. The trigger sits
            // well above the `>= 50` assertion below: the server counts a
            // request when it processes it, before the client reads the
            // response, so a poisoned stream can lose up to a pipeline
            // window of server-counted completions per timeout. The
            // cushion keeps that race from starving the assertion on
            // single-CPU runners.
            use std::sync::atomic::Ordering::Relaxed;
            while stats.requests.load(Relaxed) < 200 {
                std::thread::sleep(Duration::from_micros(200));
            }
            kvsd.shutdown();

            let report = run
                .join()
                .expect("driver thread")
                .expect("mid-pipeline kill must yield partial results, not an error");
            assert!(report.requests >= 50, "completed work went missing");
            assert!(report.failed > 0, "abandoned requests must be reported");
            assert_eq!(
                report.requests + report.failed,
                20_000,
                "every request accounted for as completed or failed"
            );
            assert!(report.reconnects > 0, "driver never tried to recover");
        });
    });
}
