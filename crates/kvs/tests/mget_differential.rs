//! Differential acceptance of the prefetched, zero-copy Multi-Get data
//! path (DESIGN.md §9): for every index family, shard count, and prefetch
//! look-ahead G, `mget` must return byte-identical results — decoded
//! entries against a model map, and CRC-sealed wire frames against both
//! the G = 0 baseline and the generic `Response::MGet` encoder — on
//! batches spanning hits, misses, and full-hash-collision fallbacks.
//! A final case replays the same traffic over real TCP loopback.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use simdht_kvs::index::{self, hash_key};
use simdht_kvs::kvsd::Kvsd;
use simdht_kvs::net::TcpConn;
use simdht_kvs::protocol::{Request, Response};
use simdht_kvs::store::{KvStore, MGetResponse, StoreConfig};
use simdht_kvs::transport::ClientConn;

const INDEXES: [&str; 5] = ["memc3", "hor", "ver", "dpdk", "local"];
const DEPTHS: [usize; 4] = [0, 1, 8, 64];

/// Find two distinct keys with the same 32-bit FNV hash (birthday search;
/// deterministic, a few hundred thousand cheap hashes).
fn collision_pair() -> (Vec<u8>, Vec<u8>) {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for i in 0usize.. {
        let key = format!("col-{i:08x}").into_bytes();
        if let Some(&j) = seen.get(&hash_key(&key)) {
            let earlier = format!("col-{j:08x}").into_bytes();
            return (earlier, key);
        }
        seen.insert(hash_key(&key), i);
    }
    unreachable!("u32 hashes must collide")
}

/// Find two distinct keys that agree on the low 12 hash bits AND on
/// `hash >> 25` but differ in the full 32-bit hash. For the localized
/// (2,7) index these land in the same bucket with the same 7-bit tag, so
/// the tag row reports a candidate and only the full-hash (and then full
/// key) check can separate them. 19 constrained bits → birthday collision
/// within ~1k keys.
fn tag_pair(prefix: &str) -> (Vec<u8>, Vec<u8>) {
    let mut seen: HashMap<u32, (usize, u32)> = HashMap::new();
    for i in 0usize.. {
        let key = format!("{prefix}-{i:08x}").into_bytes();
        let h = hash_key(&key);
        let class = (h & 0xFFF) | ((h >> 25) << 12);
        match seen.get(&class) {
            Some(&(j, hj)) if hj != h => {
                return (format!("{prefix}-{j:08x}").into_bytes(), key);
            }
            Some(_) => {}
            None => {
                seen.insert(class, (i, h));
            }
        }
    }
    unreachable!("19-bit tag classes must collide")
}

/// The corpus: varied key/value widths (mixed and uniform so Phase 1 hits
/// both the SIMD fixed-width kernel and the interleaved mixed kernel),
/// plus both keys of one hash-colliding pair and the first key of another,
/// plus two 7-bit tag-colliding pairs engineered for the localized index.
struct Corpus {
    items: Vec<(Vec<u8>, Vec<u8>)>,
    /// Inserted colliding pair: looking up either must hit via fallback.
    pair_both: (Vec<u8>, Vec<u8>),
    /// Only `.0` is inserted; probing `.1` finds a candidate whose full
    /// key differs — the fallback scan must still report a miss.
    pair_half: (Vec<u8>, Vec<u8>),
    /// Same bucket + same 7-bit tag, different full hashes; both inserted.
    tag_both: (Vec<u8>, Vec<u8>),
    /// Same bucket + same 7-bit tag; only `.0` inserted — the tag row
    /// flags a candidate but the full-hash check must reject it.
    tag_half: (Vec<u8>, Vec<u8>),
}

fn build_corpus() -> Corpus {
    let pair_both = collision_pair();
    // Perturb the search prefix to get an independent second pair.
    let pair_half = {
        let mut seen: HashMap<u32, usize> = HashMap::new();
        let mut found = None;
        for i in 0usize.. {
            let key = format!("dup-{i:08x}").into_bytes();
            if let Some(&j) = seen.get(&hash_key(&key)) {
                found = Some((format!("dup-{j:08x}").into_bytes(), key));
                break;
            }
            seen.insert(hash_key(&key), i);
        }
        found.expect("u32 hashes must collide")
    };
    let mut items = Vec::new();
    for i in 0..600usize {
        // Key widths cycle 6..=25 bytes; value widths 0..=120.
        let key = format!("k{i:0w$}", w = 5 + i % 20).into_bytes();
        let value = vec![(i % 251) as u8; (i * 7) % 121];
        items.push((key, value));
    }
    items.push((pair_both.0.clone(), b"first-of-colliding-pair".to_vec()));
    items.push((pair_both.1.clone(), b"second-of-colliding-pair".to_vec()));
    items.push((pair_half.0.clone(), b"only-inserted-collider".to_vec()));
    let tag_both = tag_pair("tagb");
    let tag_half = tag_pair("tagh");
    items.push((tag_both.0.clone(), b"first-of-tag-pair".to_vec()));
    items.push((tag_both.1.clone(), b"second-of-tag-pair".to_vec()));
    items.push((tag_half.0.clone(), b"only-inserted-tag-collider".to_vec()));
    Corpus {
        items,
        pair_both,
        pair_half,
        tag_both,
        tag_half,
    }
}

/// Query batches spanning the interesting shapes: single key, pure hits,
/// pure misses, interleaved hit/miss, collision fallbacks, an empty batch,
/// and one batch long enough to span many hash groups and prefetch windows.
fn query_batches(c: &Corpus) -> Vec<Vec<Vec<u8>>> {
    let key = |i: usize| c.items[i].0.clone();
    let miss = |i: usize| format!("absent-{i:06}").into_bytes();
    let mut batches = vec![
        vec![],
        vec![key(0)],
        vec![miss(0)],
        (0..40).map(key).collect::<Vec<_>>(),
        (0..40).map(miss).collect::<Vec<_>>(),
        (0..60)
            .map(|i| if i % 3 == 0 { miss(i) } else { key(i) })
            .collect::<Vec<_>>(),
        vec![
            c.pair_both.0.clone(),
            c.pair_both.1.clone(),
            c.pair_half.0.clone(),
            c.pair_half.1.clone(), // collides with an inserted key: must miss
            key(5),
            miss(5),
        ],
        vec![
            c.tag_both.0.clone(),
            c.tag_both.1.clone(),
            c.tag_half.0.clone(),
            c.tag_half.1.clone(), // same bucket + 7-bit tag: must miss
        ],
    ];
    // 300 keys: several 8-lane hash groups plus a remainder, and longer
    // than any prefetch window, with hits/misses/colliders interleaved.
    batches.push(
        (0..300)
            .map(|i| match i % 7 {
                0 => miss(i),
                1 => c.pair_both.1.clone(),
                2 => c.pair_half.1.clone(),
                _ => key(i % c.items.len()),
            })
            .collect(),
    );
    batches
}

fn store_with(which: &str, shards: usize, depth: usize, corpus: &Corpus) -> KvStore {
    let store = KvStore::with_shards(
        StoreConfig {
            // Varied value widths touch many slab size classes, each of
            // which reserves a 1 MiB page per shard.
            memory_budget: 128 << 20,
            capacity_items: 4096,
            shards,
            prefetch_depth: Some(depth),
            ..StoreConfig::default()
        },
        |cap| index::by_short_name(which, cap).expect("known index"),
    );
    for (k, v) in &corpus.items {
        store.set(k, v).expect("preload");
    }
    store
}

/// Sealed wire frame for one batch, plus the decoded entries.
fn run_batch(store: &KvStore, id: u64, batch: &[Vec<u8>]) -> (Vec<u8>, Vec<Option<Bytes>>) {
    let keys: Vec<&[u8]> = batch.iter().map(|k| k.as_slice()).collect();
    let mut resp = MGetResponse::new();
    store.mget(&keys, &mut resp);
    let frame = resp.seal_frame(id).to_vec();
    let decoded = match Response::decode(Bytes::copy_from_slice(&frame)) {
        Ok(Response::MGet { id: got, entries }) => {
            assert_eq!(got, id);
            entries
        }
        other => panic!("sealed frame failed to decode: {other:?}"),
    };
    (frame, decoded)
}

#[test]
fn prefetched_mget_is_bit_identical_across_depths_shards_and_indexes() {
    let corpus = build_corpus();
    let model: HashMap<&[u8], &[u8]> = corpus
        .items
        .iter()
        .map(|(k, v)| (k.as_slice(), v.as_slice()))
        .collect();
    let batches = query_batches(&corpus);

    for which in INDEXES {
        for shards in [1usize, 4] {
            let store = store_with(which, shards, 0, &corpus);
            for (b, batch) in batches.iter().enumerate() {
                let id = (b as u64) << 8;
                let (baseline_frame, baseline_entries) = run_batch(&store, id, batch);

                // The baseline agrees with the model map and with the
                // generic encoder.
                for (key, entry) in batch.iter().zip(&baseline_entries) {
                    assert_eq!(
                        entry.as_deref(),
                        model.get(key.as_slice()).copied(),
                        "{which}/{shards} shards: wrong entry for {:?}",
                        String::from_utf8_lossy(key),
                    );
                }
                let generic = Response::MGet {
                    id,
                    entries: baseline_entries.clone(),
                }
                .encode();
                assert_eq!(
                    baseline_frame,
                    generic.to_vec(),
                    "{which}/{shards} shards: zero-copy frame diverges from generic encoder",
                );

                // Every prefetch depth reproduces the baseline bytes.
                for depth in DEPTHS {
                    store.set_prefetch_depth(depth);
                    let (frame, _) = run_batch(&store, id, batch);
                    assert_eq!(
                        frame, baseline_frame,
                        "{which}/{shards} shards, G={depth}, batch {b}: frame bytes diverged",
                    );
                }
                store.set_prefetch_depth(0);
            }
        }
    }
}

#[test]
fn single_key_get_matches_mget_under_collisions() {
    let corpus = build_corpus();
    for which in INDEXES {
        let store = store_with(which, 1, 8, &corpus);
        for (k, v) in &corpus.items {
            assert_eq!(
                store.get(k).as_deref(),
                Some(v.as_slice()),
                "{which}: get({:?})",
                String::from_utf8_lossy(k),
            );
        }
        assert_eq!(
            store.get(&corpus.pair_half.1),
            None,
            "{which}: colliding absent key must miss through the fallback",
        );
        assert_eq!(
            store.get(&corpus.tag_half.1),
            None,
            "{which}: tag-colliding absent key must miss via the full-hash check",
        );
        assert_eq!(store.get(b"absent-000000"), None, "{which}");
    }
}

/// The raw bytes a TCP client reads back must be identical whatever
/// prefetch depth the server runs — the frame comparison covers the CRC
/// trailer because `recv` hands back the payload still carrying it.
#[test]
fn tcp_loopback_frames_identical_across_prefetch_depths() {
    let corpus = build_corpus();
    let batches = query_batches(&corpus);
    let mut baseline: Option<Vec<Bytes>> = None;
    for depth in [0usize, 8] {
        let store = Arc::new(store_with("hor", 4, depth, &corpus));
        let kvsd = Kvsd::bind(store, "127.0.0.1:0").expect("bind loopback");
        let mut conn = TcpConn::connect(kvsd.local_addr()).expect("connect");
        let mut frames = Vec::new();
        for (b, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            conn.send(
                Request::MGet {
                    id: b as u64,
                    keys: batch.iter().map(|k| Bytes::copy_from_slice(k)).collect(),
                }
                .encode(),
            )
            .expect("send");
            let (payload, _) = conn.recv().expect("recv");
            assert!(matches!(
                Response::decode(payload.clone()),
                Ok(Response::MGet { .. })
            ));
            frames.push(payload);
        }
        drop(conn);
        kvsd.shutdown();
        match &baseline {
            None => baseline = Some(frames),
            Some(base) => assert_eq!(
                base, &frames,
                "TCP reply bytes changed between G=0 and G={depth}",
            ),
        }
    }
}
