//! Concurrent-reader torn-read oracle for the seqlock optimistic read
//! path (DESIGN.md §11).
//!
//! N seeded writer threads churn a deliberately small, hot key set while
//! M seeded reader threads hammer the same keys through `get` and the
//! prefetched `mget` pipeline. Every stored value is **tagged and
//! self-checksummed** (`key|seq|payload|fnv64`), so any torn read —
//! a splice of two writes, a half-copied buffer, bytes from a recycled
//! chunk — fails the checksum or the key tag with overwhelming
//! probability. On top of that, a per-key `started`/`completed`
//! sequencing log checks linearizability exactly like `shard_stress.rs`:
//!
//! * the observed sequence was actually started before the read returned,
//! * it is at least as new as the last write completed before the read
//!   began (replace deletes the older item under the shard write lock),
//! * per reader, per key, sequences never go backwards,
//! * a miss is only legal when nothing completed, a delete has started
//!   on the key, or eviction is on.
//!
//! Delete-mixing rounds (`deletes_never_expose_recycled_bytes`) make the
//! recycled-chunk race first-class: deletes consume log sequence numbers,
//! so even an intact deleted value resurfacing fails the freshness bound.
//!
//! Every round runs in **both read modes**: `Locked` is the control,
//! `Optimistic` is the subject under test — same oracle, no relaxation.
//! Set the `READ_MODE` env var (`locked` | `optimistic`) to restrict the
//! matrix to one mode; `SHARD_STRESS_SEEDS` scales the seeded
//! repetitions (default 3; CI runs 100 in release mode).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use simdht_kvs::index::by_short_name;
use simdht_kvs::store::{KvStore, MGetResponse, ReadMode, SetMultiBatch, ShardStats, StoreConfig};

const WRITERS: usize = 4;
const READERS: usize = 4;
/// Small per-writer key set: high per-key write rates are what force
/// readers into the seqlock retry/fallback windows.
const KEYS_PER_WRITER: usize = 16;
const OPS_PER_WRITER: usize = 600;
const OPS_PER_READER: usize = 1200;
/// Keys per reader Multi-Get batch (drives the G-ahead AMAC pipeline).
const BATCH: usize = 8;
/// Pairs per writer `set_multi` batch in the batched-writer rounds.
const WRITE_BATCH: usize = 8;

fn n_seeds() -> u64 {
    std::env::var("SHARD_STRESS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Which read modes this process exercises: both by default, or just the
/// one `READ_MODE` names.
fn modes() -> Vec<ReadMode> {
    match std::env::var("READ_MODE") {
        Ok(s) => vec![ReadMode::parse(&s)
            .unwrap_or_else(|| panic!("READ_MODE={s}: expected locked | optimistic"))],
        Err(_) => vec![ReadMode::Locked, ReadMode::Optimistic],
    }
}

fn key_of(w: usize, i: usize) -> String {
    format!("w{w:02}-k{i:02}")
}

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode `key|seq|payload|checksum`. The payload is a seq-derived run of
/// one letter, `pay_len` bytes long; the checksum is FNV-64 over
/// everything before it. A reader that ever sees bytes from two different
/// writes (or another key's item) fails the checksum or the key tag.
fn value_of(key: &str, seq: u64, pay_len: usize) -> Vec<u8> {
    let letter = char::from(b'a' + (seq % 26) as u8);
    let payload: String = std::iter::repeat_n(letter, pay_len).collect();
    let body = format!("{key}|{seq}|{payload}");
    let sum = fnv64(body.as_bytes());
    format!("{body}|{sum:016x}").into_bytes()
}

/// Decode and verify a stress value read back under `key`; returns its
/// sequence number. Panics on any internal inconsistency — that panic IS
/// the torn-read oracle firing.
fn parse_value(key: &str, value: &[u8]) -> u64 {
    let s = std::str::from_utf8(value).expect("stress values are ascii");
    let (body, sum_hex) = s.rsplit_once('|').expect("stress values end in |checksum");
    let sum = u64::from_str_radix(sum_hex, 16).expect("checksum field parses");
    assert_eq!(
        sum,
        fnv64(body.as_bytes()),
        "{key}: TORN READ — checksum mismatch on {body:?}"
    );
    let mut parts = body.splitn(3, '|');
    let k = parts.next().expect("key field");
    assert_eq!(k, key, "SPLICED READ — value stored under the wrong key");
    let seq: u64 = parts
        .next()
        .expect("seq field")
        .parse()
        .expect("sequence number parses");
    let payload = parts.next().expect("payload field");
    let letter = char::from(b'a' + (seq % 26) as u8);
    assert!(
        payload.chars().all(|c| c == letter),
        "{key}: TORN READ — payload bytes disagree with seq {seq}"
    );
    seq
}

struct Logs {
    started: Vec<Vec<AtomicU64>>,
    completed: Vec<Vec<AtomicU64>>,
    /// Deletes begun per key — a miss is legal once one has started.
    del_started: Vec<Vec<AtomicU64>>,
}

/// One reader's view of a single key observation, checked against the
/// sequencing log and the reader's own monotonicity state.
#[allow(clippy::too_many_arguments)]
fn check_observation(
    key: &str,
    value: Option<&[u8]>,
    floor: u64,
    after: u64,
    deletes_started: u64,
    last_seen: &mut Option<u64>,
    eviction_possible: bool,
) {
    match value {
        Some(v) => {
            let seq = parse_value(key, v);
            assert!(
                seq < after,
                "{key}: read seq {seq} never started (started {after})"
            );
            assert!(
                seq + 1 >= floor,
                "{key}: read stale seq {seq}, {floor} ops had completed before the read"
            );
            if let Some(prev) = *last_seen {
                assert!(
                    seq >= prev,
                    "{key}: per-key sequence went backwards ({prev} then {seq})"
                );
            }
            *last_seen = Some(seq);
        }
        None => {
            if !eviction_possible && deletes_started == 0 {
                assert_eq!(floor, 0, "{key}: completed write lost without eviction");
            }
        }
    }
}

/// How the writer threads publish their churn.
#[derive(Copy, Clone, PartialEq)]
enum WriterStyle {
    /// One `set` call per key — the PR-7 baseline.
    Single,
    /// `WRITE_BATCH`-wide `set_multi` batches (duplicates allowed, so
    /// later-wins resolution runs inside a single seqlock write session).
    Batched,
}

/// Run one seeded round: writers churn, readers mix single-key `get`
/// with `BATCH`-wide `mget` (prefetch depth 8), all against the store's
/// currently configured read mode. Returns harness-counted sets.
fn stress_round(store: &Arc<KvStore>, seed: u64, eviction_possible: bool, pay_len: usize) -> u64 {
    stress_round_with(
        store,
        seed,
        eviction_possible,
        pay_len,
        WriterStyle::Single,
        0.0,
    )
    .0
}

/// As [`stress_round`], with a per-op probability that a Single-style
/// writer deletes the picked key instead of setting it. Deletes consume
/// sequence numbers in the log (so a deleted value resurfacing fails the
/// freshness bound) and a miss becomes legal once a delete has started.
/// Returns `(sets issued, deletes that removed a live item)`.
fn stress_round_with(
    store: &Arc<KvStore>,
    seed: u64,
    eviction_possible: bool,
    pay_len: usize,
    style: WriterStyle,
    delete_prob: f64,
) -> (u64, u64) {
    let logs = Logs {
        started: (0..WRITERS)
            .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        completed: (0..WRITERS)
            .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        del_started: (0..WRITERS)
            .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
            .collect(),
    };
    let sets_issued = AtomicU64::new(0);
    let deletes_hit = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let store = Arc::clone(store);
            let logs = &logs;
            let sets_issued = &sets_issued;
            let deletes_hit = &deletes_hit;
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (w as u64),
                );
                let mut next_seq = [0u64; KEYS_PER_WRITER];
                match style {
                    WriterStyle::Single => {
                        for _ in 0..OPS_PER_WRITER {
                            let i = rng.gen_range(0..KEYS_PER_WRITER);
                            let key = key_of(w, i);
                            let seq = next_seq[i];
                            if delete_prob > 0.0 && rng.gen::<f64>() < delete_prob {
                                logs.del_started[w][i].fetch_add(1, Ordering::SeqCst);
                                logs.started[w][i].store(seq + 1, Ordering::SeqCst);
                                if store.delete(key.as_bytes()) {
                                    deletes_hit.fetch_add(1, Ordering::Relaxed);
                                }
                                logs.completed[w][i].store(seq + 1, Ordering::SeqCst);
                            } else {
                                logs.started[w][i].store(seq + 1, Ordering::SeqCst);
                                store
                                    .set(key.as_bytes(), &value_of(&key, seq, pay_len))
                                    .expect("stress writes fit the store");
                                logs.completed[w][i].store(seq + 1, Ordering::SeqCst);
                                sets_issued.fetch_add(1, Ordering::Relaxed);
                            }
                            next_seq[i] = seq + 1;
                        }
                    }
                    WriterStyle::Batched => {
                        let mut scratch = SetMultiBatch::new();
                        for _ in 0..OPS_PER_WRITER / WRITE_BATCH {
                            // Duplicates are allowed: a key picked twice
                            // gets two sequence numbers applied in batch
                            // order, so the batch itself exercises the
                            // in-session later-wins path.
                            let picks: Vec<usize> = (0..WRITE_BATCH)
                                .map(|_| rng.gen_range(0..KEYS_PER_WRITER))
                                .collect();
                            let owned: Vec<(String, Vec<u8>)> = picks
                                .iter()
                                .map(|&i| {
                                    let key = key_of(w, i);
                                    let seq = next_seq[i];
                                    next_seq[i] = seq + 1;
                                    let value = value_of(&key, seq, pay_len);
                                    (key, value)
                                })
                                .collect();
                            // Publish `started` for every touched key
                            // before the first byte of the batch lands;
                            // `completed` only once the whole batch (and
                            // its write session) has retired.
                            for &i in &picks {
                                logs.started[w][i].store(next_seq[i], Ordering::SeqCst);
                            }
                            let pairs: Vec<(&[u8], &[u8])> = owned
                                .iter()
                                .map(|(k, v)| (k.as_bytes(), v.as_slice()))
                                .collect();
                            let outcome = store.set_multi(&pairs, &mut scratch);
                            assert_eq!(
                                outcome.stored, WRITE_BATCH,
                                "roomy batched stress writes must all land"
                            );
                            for &i in &picks {
                                logs.completed[w][i].store(next_seq[i], Ordering::SeqCst);
                            }
                            sets_issued.fetch_add(WRITE_BATCH as u64, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        for r in 0..READERS {
            let store = Arc::clone(store);
            let logs = &logs;
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(0xD1B5_4A32_D192_ED03) ^ (0xBEEF + r as u64),
                );
                let mut resp = MGetResponse::new();
                let mut last_seen = vec![vec![None::<u64>; KEYS_PER_WRITER]; WRITERS];
                for op in 0..OPS_PER_READER {
                    if op % 2 == 0 {
                        // Single-key optimistic `get`.
                        let w = rng.gen_range(0..WRITERS);
                        let i = rng.gen_range(0..KEYS_PER_WRITER);
                        let key = key_of(w, i);
                        let floor = logs.completed[w][i].load(Ordering::SeqCst);
                        let got = store.get(key.as_bytes());
                        let after = logs.started[w][i].load(Ordering::SeqCst);
                        let dels = logs.del_started[w][i].load(Ordering::SeqCst);
                        check_observation(
                            &key,
                            got.as_deref(),
                            floor,
                            after,
                            dels,
                            &mut last_seen[w][i],
                            eviction_possible,
                        );
                    } else {
                        // Prefetched Multi-Get across hot keys of every
                        // writer; per-key log bounds still apply.
                        let picks: Vec<(usize, usize)> = (0..BATCH)
                            .map(|_| (rng.gen_range(0..WRITERS), rng.gen_range(0..KEYS_PER_WRITER)))
                            .collect();
                        let keys: Vec<String> = picks.iter().map(|&(w, i)| key_of(w, i)).collect();
                        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
                        let floors: Vec<u64> = picks
                            .iter()
                            .map(|&(w, i)| logs.completed[w][i].load(Ordering::SeqCst))
                            .collect();
                        store.mget(&refs, &mut resp);
                        for (j, &(w, i)) in picks.iter().enumerate() {
                            let after = logs.started[w][i].load(Ordering::SeqCst);
                            let dels = logs.del_started[w][i].load(Ordering::SeqCst);
                            check_observation(
                                &keys[j],
                                resp.value(j),
                                floors[j],
                                after,
                                dels,
                                &mut last_seen[w][i],
                                eviction_possible,
                            );
                        }
                    }
                }
            });
        }
    });

    // Quiesced: started == completed once every writer joined.
    for (s_row, c_row) in logs.started.iter().zip(&logs.completed) {
        for (i, s) in s_row.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::SeqCst),
                c_row[i].load(Ordering::SeqCst),
                "writer did not drain"
            );
        }
    }
    (
        sets_issued.load(Ordering::Relaxed),
        deletes_hit.load(Ordering::Relaxed),
    )
}

fn check_conservation(store: &KvStore, sets_issued: u64) {
    let totals = store.totals();
    let mut summed = ShardStats::default();
    for s in store.shard_stats() {
        summed.add(&s);
    }
    assert_eq!(summed, totals, "sum over shards must equal global totals");
    assert_eq!(totals.sets, sets_issued, "set counter conservation");
    assert_eq!(totals.items, store.len(), "item counter conservation");
}

fn roomy_store(index: &str, mode: ReadMode) -> Arc<KvStore> {
    let store = Arc::new(KvStore::with_shards(
        StoreConfig {
            memory_budget: 64 << 20,
            capacity_items: 4 * WRITERS * KEYS_PER_WRITER,
            shards: 4,
            prefetch_depth: Some(8),
            read_mode: mode,
        },
        |cap| by_short_name(index, cap).expect("known index"),
    ));
    assert!(
        store.optimistic_capable(),
        "{index}: stress matrix expects an optimistic-capable backend"
    );
    store
}

#[test]
fn stress_torn_read_oracle_hot_keys() {
    for seed in 0..n_seeds() {
        for index in ["memc3", "ver", "dpdk", "local"] {
            for mode in modes() {
                let store = roomy_store(index, mode);
                let sets = stress_round(&store, seed, false, 40);
                check_conservation(&store, sets);
                assert_eq!(store.totals().evictions, 0, "budget was roomy");
                if mode == ReadMode::Optimistic {
                    let stats = store.optimistic_stats();
                    assert!(
                        stats.commits > 0,
                        "{index}: optimistic path was never exercised"
                    );
                    assert!(stats.attempts >= stats.commits);
                }
            }
        }
    }
}

/// The batched write path under the same oracle: writers publish through
/// `WRITE_BATCH`-wide `set_multi` calls — one shard lock and one seqlock
/// write session per shard group — while optimistic readers hammer the
/// same hot keys. Any splice of two batch members, or a value exposed
/// between a batch's delete and re-insert, trips the checksum/log oracle.
#[test]
fn stress_torn_read_oracle_batched_writers() {
    for seed in 0..n_seeds() {
        for index in ["memc3", "ver", "dpdk", "local"] {
            for mode in modes() {
                let store = roomy_store(index, mode);
                let (sets, _) =
                    stress_round_with(&store, seed, false, 40, WriterStyle::Batched, 0.0);
                check_conservation(&store, sets);
                assert_eq!(store.totals().evictions, 0, "budget was roomy");
                if mode == ReadMode::Optimistic {
                    let stats = store.optimistic_stats();
                    assert!(
                        stats.commits > 0,
                        "{index}: optimistic path was never exercised"
                    );
                    assert!(stats.attempts >= stats.commits);
                }
            }
        }
    }
}

/// Deletes under optimistic readers: a deleted item's chunk goes back to
/// the slab free list and is recycled by later writes — possibly under a
/// different key, possibly while a lock-free reader still holds a pointer
/// into it. The reader must never return the recycled bytes under the old
/// key: the key tag + checksum oracle fires on spliced bytes, the
/// row-generation ABA check forces a retry on recycled rows, and the
/// seq-consuming delete log catches a deleted value resurfacing intact.
#[test]
fn deletes_never_expose_recycled_bytes() {
    for seed in 0..n_seeds() {
        for index in ["memc3", "ver", "dpdk", "local"] {
            for mode in modes() {
                let store = roomy_store(index, mode);
                let (sets, deletes) =
                    stress_round_with(&store, seed, false, 40, WriterStyle::Single, 0.25);
                assert!(deletes > 0, "{index}: deletes must actually land");
                check_conservation(&store, sets);
                assert_eq!(
                    store.totals().deletes,
                    deletes,
                    "{index}: delete counter conservation"
                );
                assert_eq!(store.totals().evictions, 0, "budget was roomy");
                if mode == ReadMode::Optimistic {
                    let stats = store.optimistic_stats();
                    assert!(
                        stats.commits > 0,
                        "{index}: optimistic path was never exercised"
                    );
                }
            }
        }
    }
}

/// Deterministic mid-batch torn-window probe: pause a `set_multi` batch
/// at the exact point where the hot key's old item is deleted but its
/// replacement is not yet written (the `torture_set_pause` hook fires
/// inside the per-key insert body, which the batch shares with `set`).
/// A reader arriving during the pause must block — the seqlock session
/// is odd and the shard write lock is held — and then observe the
/// batch's final value, never the deleted-but-unwritten hole.
#[test]
fn paused_batched_writer_never_exposes_mid_batch_state() {
    for mode in modes() {
        let store = Arc::new(KvStore::with_shards(
            StoreConfig {
                memory_budget: 64 << 20,
                capacity_items: 1024,
                shards: 1, // one shard: batch pairs apply in request order
                prefetch_depth: Some(8),
                read_mode: mode,
            },
            |cap| by_short_name("memc3", cap).expect("known index"),
        ));
        let hot = key_of(0, 0);
        store
            .set(hot.as_bytes(), &value_of(&hot, 0, 40))
            .expect("preload");

        let paused = Arc::new(AtomicBool::new(false));
        let resume = Arc::new(AtomicBool::new(false));
        {
            let paused = Arc::clone(&paused);
            let resume = Arc::clone(&resume);
            let calls = AtomicUsize::new(0);
            store.set_torture_set_pause(Some(Box::new(move || {
                // Pair #0 is filler; pair #1 is the hot key — freeze
                // there, with its old item gone and the new one pending.
                if calls.fetch_add(1, Ordering::SeqCst) == 1 {
                    paused.store(true, Ordering::SeqCst);
                    while !resume.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                }
            })));
        }

        let read_done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let writer_store = Arc::clone(&store);
            let writer_hot = hot.clone();
            s.spawn(move || {
                let filler_a = value_of("filler-a", 7, 40);
                let hot_new = value_of(&writer_hot, 1, 40);
                let filler_b = value_of("filler-b", 7, 40);
                let pairs: Vec<(&[u8], &[u8])> = vec![
                    (b"filler-a", filler_a.as_slice()),
                    (writer_hot.as_bytes(), hot_new.as_slice()),
                    (b"filler-b", filler_b.as_slice()),
                ];
                let mut scratch = SetMultiBatch::new();
                let outcome = writer_store.set_multi(&pairs, &mut scratch);
                assert_eq!(outcome.stored, 3, "paused batch still lands in full");
            });

            // Wait until the writer is frozen inside the batch.
            let t0 = std::time::Instant::now();
            while !paused.load(Ordering::SeqCst) {
                assert!(
                    t0.elapsed().as_secs() < 30,
                    "writer never hit the pause hook"
                );
                std::thread::yield_now();
            }

            let reader_store = Arc::clone(&store);
            let reader_hot = hot.clone();
            let reader_done = Arc::clone(&read_done);
            let reader = s.spawn(move || {
                let got = reader_store.get(reader_hot.as_bytes());
                reader_done.store(true, Ordering::SeqCst);
                got
            });

            // The reader must NOT complete while the batch is mid-write:
            // completing now could only return the torn hole (a miss) or
            // a half-written value.
            std::thread::sleep(std::time::Duration::from_millis(100));
            assert!(
                !read_done.load(Ordering::SeqCst),
                "{}: reader returned during the torn mid-batch window",
                mode.name(),
            );

            resume.store(true, Ordering::SeqCst);
            let got = reader.join().expect("reader joins");
            let value = got.unwrap_or_else(|| {
                panic!(
                    "{}: reader observed the mid-batch hole as a miss",
                    mode.name()
                )
            });
            assert_eq!(
                parse_value(&hot, &value),
                1,
                "{}: reader must see the batch's final value",
                mode.name(),
            );
        });
        store.set_torture_set_pause(None);
    }
}

#[test]
fn stress_torn_read_oracle_under_eviction_pressure() {
    // Tight budget: CLOCK eviction and chunk recycling race the lock-free
    // readers, so row-generation ABA protection and checksum validation
    // carry the oracle. pay_len = 100_000 keeps every value in one big
    // slab class (pages never migrate between classes) AND makes each
    // shard's single 1 MiB floor page hold fewer chunks than the ~16 hot
    // keys routed to it, so CLOCK must evict continuously.
    for seed in 0..n_seeds() {
        for mode in modes() {
            let store = Arc::new(KvStore::with_shards(
                StoreConfig {
                    memory_budget: 4 << 20,
                    capacity_items: WRITERS * KEYS_PER_WRITER,
                    shards: 4,
                    prefetch_depth: Some(8),
                    read_mode: mode,
                },
                |cap| by_short_name("hor", cap).expect("known index"),
            ));
            let sets = stress_round(&store, seed, true, 100_000);
            let totals = store.totals();
            assert!(totals.evictions > 0, "tight budget must force evictions");
            assert_eq!(totals.sets, sets, "set counter conservation");
            let mut summed = ShardStats::default();
            for s in store.shard_stats() {
                summed.add(&s);
            }
            assert_eq!(summed, totals);
            assert_eq!(totals.items, store.len());
        }
    }
}

#[test]
fn stress_read_mode_flips_live() {
    // Flipping the mode while readers and writers are in flight must be
    // safe: the AtomicU8 is read per-operation, so both paths interleave.
    let store = roomy_store("memc3", ReadMode::Locked);
    std::thread::scope(|s| {
        let flipper = Arc::clone(&store);
        s.spawn(move || {
            for round in 0..200 {
                flipper.set_read_mode(if round % 2 == 0 {
                    ReadMode::Optimistic
                } else {
                    ReadMode::Locked
                });
                std::thread::yield_now();
            }
        });
        let _ = stress_round(&store, 42, false, 40);
    });
}
