//! Property tests over the wire protocol: arbitrary requests/responses
//! roundtrip exactly, and arbitrary byte soup never panics the decoders.

use bytes::Bytes;
use proptest::prelude::*;
use simdht_kvs::protocol::{Request, Response};

fn arb_key() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(arb_key(), 0..40))
            .prop_map(|(id, keys)| Request::MGet { id, keys }),
        (
            any::<u64>(),
            arb_key(),
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(id, key, value)| Request::Set {
                id,
                key,
                value: Bytes::from(value)
            }),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            any::<u64>(),
            prop::collection::vec(
                prop::option::of(prop::collection::vec(any::<u8>(), 0..100).prop_map(Bytes::from)),
                0..40
            )
        )
            .prop_map(|(id, entries)| Response::MGet { id, entries }),
        (any::<u64>(), any::<bool>()).prop_map(|(id, ok)| Response::Set { id, ok }),
    ]
}

/// Hand-written malformed frames: every entry must be *rejected* (never
/// panic, never mis-decode) by both decoders. Each case documents the
/// specific framing violation it probes.
#[test]
fn malformed_corpus_is_rejected() {
    let corpus: &[(&str, &[u8])] = &[
        ("empty frame", &[]),
        ("unknown request opcode", &[0]),
        ("opcode from response space sent as request", &[200]),
        ("mget opcode alone, no header", &[1]),
        ("mget header cut inside the id", &[1, 9, 9, 9]),
        (
            "mget declares one key, provides no length",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0],
        ),
        (
            "mget key length larger than remaining bytes",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 255, 255, b'x'],
        ),
        (
            "mget declares 65535 keys with no payload",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255],
        ),
        ("set header cut inside the id", &[2, 1, 2, 3]),
        (
            "set key length overruns the frame",
            &[2, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, b'k'],
        ),
        (
            "set value length u32::MAX with no value bytes",
            &[2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, b'k', 255, 255, 255, 255],
        ),
        ("mget response cut inside the id", &[128, 1]),
        (
            "mget response entry flag is neither 0 nor 1",
            &[128, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 7],
        ),
        (
            "mget response value length overruns the frame",
            &[128, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 255, 255, 255, 255],
        ),
        (
            "set response missing the ok byte",
            &[129, 0, 0, 0, 0, 0, 0, 0, 0],
        ),
    ];
    for (what, bytes) in corpus {
        let b = Bytes::copy_from_slice(bytes);
        assert!(Request::decode(b.clone()).is_err(), "request: {what}");
        assert!(Response::decode(b).is_err(), "response: {what}");
    }
}

/// Valid messages survive having garbage appended only if decoding is
/// strict about opcodes — trailing bytes after a complete message are
/// tolerated by design (the frame layer delimits messages), but a frame
/// whose *first* byte is corrupted must always fail.
#[test]
fn corrupted_opcode_always_errors() {
    let req = Request::MGet {
        id: 3,
        keys: vec![Bytes::from_static(b"some-key")],
    };
    let good = req.encode();
    for bad_op in [0u8, 4, 5, 42, 127, 130, 255] {
        let mut bytes = good.to_vec();
        bytes[0] = bad_op;
        assert!(
            Request::decode(Bytes::from(bytes.clone())).is_err(),
            "opcode {bad_op}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let b = Bytes::from(bytes);
        let _ = Request::decode(b.clone());
        let _ = Response::decode(b);
    }

    #[test]
    fn truncation_always_errors_or_shrinks(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let full = req.encode();
        if full.len() > 1 {
            let cut = 1 + cut.index(full.len() - 1);
            if cut < full.len() {
                // A strict prefix either fails to decode, or (for MGet with
                // trailing keys cut at a record boundary) decodes to fewer
                // keys — it must never decode to the identical message.
                if let Ok(decoded) = Request::decode(full.slice(..cut)) {
                    prop_assert_ne!(decoded, req, "truncated bytes decoded identically");
                }
            }
        }
    }
}
