//! Property tests over the wire protocol: arbitrary requests/responses
//! roundtrip exactly, and arbitrary byte soup never panics the decoders.

use bytes::Bytes;
use proptest::prelude::*;
use simdht_kvs::protocol::{Request, Response};

fn arb_key() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(arb_key(), 0..40))
            .prop_map(|(id, keys)| Request::MGet { id, keys }),
        (any::<u64>(), arb_key(), prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(id, key, value)| Request::Set {
                id,
                key,
                value: Bytes::from(value)
            }),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            any::<u64>(),
            prop::collection::vec(
                prop::option::of(prop::collection::vec(any::<u8>(), 0..100).prop_map(Bytes::from)),
                0..40
            )
        )
            .prop_map(|(id, entries)| Response::MGet { id, entries }),
        (any::<u64>(), any::<bool>()).prop_map(|(id, ok)| Response::Set { id, ok }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let b = Bytes::from(bytes);
        let _ = Request::decode(b.clone());
        let _ = Response::decode(b);
    }

    #[test]
    fn truncation_always_errors_or_shrinks(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let full = req.encode();
        if full.len() > 1 {
            let cut = 1 + cut.index(full.len() - 1);
            if cut < full.len() {
                // A strict prefix either fails to decode, or (for MGet with
                // trailing keys cut at a record boundary) decodes to fewer
                // keys — it must never decode to the identical message.
                if let Ok(decoded) = Request::decode(full.slice(..cut)) {
                    prop_assert_ne!(decoded, req, "truncated bytes decoded identically");
                }
            }
        }
    }
}
