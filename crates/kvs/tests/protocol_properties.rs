//! Property tests over the wire protocol: arbitrary requests/responses
//! roundtrip exactly, and arbitrary byte soup never panics the decoders.

use bytes::Bytes;
use proptest::prelude::*;
use simdht_kvs::protocol::{ErrorCode, OpStatus, Request, Response};

fn arb_key() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec(arb_key(), 0..40))
            .prop_map(|(id, keys)| Request::MGet { id, keys }),
        (
            any::<u64>(),
            arb_key(),
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(id, key, value)| Request::Set {
                id,
                key,
                value: Bytes::from(value)
            }),
        (
            any::<u64>(),
            prop::collection::vec(
                (arb_key(), prop::collection::vec(any::<u8>(), 0..120)),
                0..20
            )
        )
            .prop_map(|(id, pairs)| Request::SetMulti {
                id,
                pairs: pairs
                    .into_iter()
                    .map(|(k, v)| (k, Bytes::from(v)))
                    .collect(),
            }),
        (any::<u64>(), arb_key()).prop_map(|(id, key)| Request::Delete { id, key }),
        (
            any::<u64>(),
            arb_key(),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..200),
            any::<u32>(),
        )
            .prop_map(
                |(id, key, expected_version, value, ttl_secs)| Request::Cas {
                    id,
                    key,
                    expected_version,
                    value: Bytes::from(value),
                    ttl_secs,
                }
            ),
        (any::<u64>(), arb_key(), any::<u32>()).prop_map(|(id, key, ttl_secs)| Request::Touch {
            id,
            key,
            ttl_secs
        }),
        (
            any::<u64>(),
            arb_key(),
            prop::collection::vec(any::<u8>(), 0..200),
            any::<u32>(),
        )
            .prop_map(|(id, key, value, ttl_secs)| Request::SetEx {
                id,
                key,
                value: Bytes::from(value),
                ttl_secs,
            }),
        (
            any::<u64>(),
            prop::collection::vec(
                (arb_key(), prop::collection::vec(any::<u8>(), 0..120)),
                0..20
            ),
            any::<u32>(),
        )
            .prop_map(|(id, pairs, ttl_secs)| Request::SetMultiEx {
                id,
                pairs: pairs
                    .into_iter()
                    .map(|(k, v)| (k, Bytes::from(v)))
                    .collect(),
                ttl_secs,
            }),
        Just(Request::Shutdown),
    ]
}

/// Canonicalize a raw status byte through `from_wire`, as `arb_response`
/// does for error codes: known bytes map to their named statuses, so
/// every generated status roundtrips exactly.
fn arb_status() -> impl Strategy<Value = OpStatus> {
    any::<u8>().prop_map(OpStatus::from_wire)
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            any::<u64>(),
            prop::collection::vec(
                prop::option::of(prop::collection::vec(any::<u8>(), 0..100).prop_map(Bytes::from)),
                0..40
            )
        )
            .prop_map(|(id, entries)| Response::MGet { id, entries }),
        (any::<u64>(), any::<bool>()).prop_map(|(id, ok)| Response::Set { id, ok }),
        (any::<u64>(), prop::collection::vec(any::<bool>(), 0..40))
            .prop_map(|(id, ok)| Response::SetMulti { id, ok }),
        (any::<u64>(), arb_status()).prop_map(|(id, status)| Response::Delete { id, status }),
        (any::<u64>(), arb_status(), any::<u64>()).prop_map(|(id, status, version)| {
            Response::Cas {
                id,
                status,
                version,
            }
        }),
        (any::<u64>(), arb_status()).prop_map(|(id, status)| Response::Touch { id, status }),
        (any::<u64>(), arb_status(), any::<u64>()).prop_map(|(id, status, version)| {
            Response::SetEx {
                id,
                status,
                version,
            }
        }),
        // Canonicalize through `from_wire`: raw byte 1 means `ServerBusy`,
        // never `Unknown(1)`, so every generated code roundtrips exactly.
        (any::<u64>(), any::<u8>()).prop_map(|(id, code)| Response::Error {
            id,
            code: ErrorCode::from_wire(code),
        }),
    ]
}

/// Hand-written malformed frames: every entry must be *rejected* (never
/// panic, never mis-decode) by both decoders. Each case documents the
/// specific framing violation it probes.
#[test]
fn malformed_corpus_is_rejected() {
    let corpus: &[(&str, &[u8])] = &[
        ("empty frame", &[]),
        ("unknown request opcode", &[0]),
        ("opcode from response space sent as request", &[200]),
        ("mget opcode alone, no header", &[1]),
        ("mget header cut inside the id", &[1, 9, 9, 9]),
        (
            "mget declares one key, provides no length",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0],
        ),
        (
            "mget key length larger than remaining bytes",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 255, 255, b'x'],
        ),
        (
            "mget declares 65535 keys with no payload",
            &[1, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255],
        ),
        ("set header cut inside the id", &[2, 1, 2, 3]),
        (
            "set key length overruns the frame",
            &[2, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, b'k'],
        ),
        (
            "set value length u32::MAX with no value bytes",
            &[2, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, b'k', 255, 255, 255, 255],
        ),
        ("set-multi header cut inside the id", &[4, 1, 2, 3]),
        (
            "set-multi declares one pair, provides no key length",
            &[4, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0],
        ),
        (
            "set-multi pair key length overruns the frame",
            &[4, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 255, 255, b'x'],
        ),
        (
            "set-multi value length u32::MAX with no value bytes",
            &[
                4, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, b'k', 255, 255, 255, 255,
            ],
        ),
        (
            "set-multi declares 65535 pairs with no payload",
            &[4, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255],
        ),
        ("mget response cut inside the id", &[128, 1]),
        (
            "mget response entry flag is neither 0 nor 1",
            &[128, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 7],
        ),
        (
            "mget response value length overruns the frame",
            &[128, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 255, 255, 255, 255],
        ),
        (
            "set response missing the ok byte",
            &[129, 0, 0, 0, 0, 0, 0, 0, 0],
        ),
        (
            "set-multi response declares one status, provides none",
            &[131, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0],
        ),
        (
            "set-multi response status byte is neither 0 nor 1",
            &[131, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 7],
        ),
    ];
    for (what, bytes) in corpus {
        let b = Bytes::copy_from_slice(bytes);
        assert!(Request::decode(b.clone()).is_err(), "request: {what}");
        assert!(Response::decode(b).is_err(), "response: {what}");
    }
}

/// Systematic truncation of a real two-key MGet frame: because the key
/// count is declared up front, *every* strict prefix — cut mid-count,
/// mid-key-length, or mid-key-bytes — must be rejected; there is no
/// prefix that silently decodes to fewer keys.
#[test]
fn truncated_mget_frames_are_rejected() {
    let req = Request::MGet {
        id: 0xABCD,
        keys: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"seven77")],
    };
    let full = req.encode();
    // Layout: op(1) + id(8) + count(2) + [klen(2) + key]* + crc32(4).
    assert_eq!(full.len(), 1 + 8 + 2 + 2 + 5 + 2 + 7 + 4);
    for cut in 1..full.len() {
        assert!(
            Request::decode(full.slice(..cut)).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    assert_eq!(Request::decode(full).unwrap(), req);
}

/// A batch may name the same key more than once; the frame decodes with
/// one slot per occurrence (the server answers per-key, it does not
/// dedupe or reject).
#[test]
fn duplicate_keys_in_batch_decode_per_slot() {
    let dup = Bytes::from_static(b"hot-key");
    let req = Request::MGet {
        id: 9,
        keys: vec![dup.clone(), Bytes::from_static(b"other"), dup.clone(), dup],
    };
    let decoded = Request::decode(req.encode()).unwrap();
    assert_eq!(decoded, req);
    let Request::MGet { keys, .. } = decoded else {
        unreachable!()
    };
    assert_eq!(keys.len(), 4, "duplicates must keep their slots");
    assert_eq!(keys[0], keys[2]);
}

/// End-to-end: a live `Kvsd` answers a duplicate-key Multi-Get per slot
/// (every occurrence filled, misses left empty) and keeps the connection
/// usable afterwards — duplicates are normal traffic, not a protocol
/// violation.
#[test]
fn kvsd_answers_duplicate_keys_per_slot() {
    use std::sync::Arc;

    use simdht_kvs::index::by_short_name;
    use simdht_kvs::kvsd::Kvsd;
    use simdht_kvs::net::TcpConn;
    use simdht_kvs::store::{KvStore, StoreConfig};
    use simdht_kvs::transport::ClientConn;

    let store = Arc::new(KvStore::new(
        by_short_name("memc3", 64).expect("known index"),
        StoreConfig {
            memory_budget: 4 << 20,
            capacity_items: 64,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
    ));
    store.set(b"hot-key", b"hot-value").expect("preload");
    let kvsd = Kvsd::bind(Arc::clone(&store), "127.0.0.1:0").expect("bind");
    let mut conn = TcpConn::connect(kvsd.local_addr()).expect("connect");

    let req = Request::MGet {
        id: 41,
        keys: vec![
            Bytes::from_static(b"hot-key"),
            Bytes::from_static(b"missing"),
            Bytes::from_static(b"hot-key"),
            Bytes::from_static(b"hot-key"),
        ],
    };
    conn.send(req.encode()).expect("send");
    let (frame, _) = conn.recv().expect("recv");
    let Response::MGet { id, entries } = Response::decode(frame).expect("decode") else {
        panic!("expected an MGet response");
    };
    assert_eq!(id, 41);
    assert_eq!(entries.len(), 4, "one entry per slot, duplicates included");
    let hot = Bytes::from_static(b"hot-value");
    assert_eq!(entries[0].as_ref(), Some(&hot));
    assert_eq!(entries[1], None, "miss slot stays empty");
    assert_eq!(entries[2].as_ref(), Some(&hot));
    assert_eq!(entries[3].as_ref(), Some(&hot));

    // The connection survives: a second request on the same socket works.
    let again = Request::MGet {
        id: 42,
        keys: vec![Bytes::from_static(b"hot-key")],
    };
    conn.send(again.encode()).expect("send again");
    let (frame, _) = conn.recv().expect("recv again");
    match Response::decode(frame).expect("decode again") {
        Response::MGet { id, entries } => {
            assert_eq!(id, 42);
            assert_eq!(entries[0].as_ref(), Some(&hot));
        }
        other => panic!("unexpected response {other:?}"),
    }
    drop(conn);
    kvsd.shutdown();
}

/// Valid messages survive having garbage appended only if decoding is
/// strict about opcodes — trailing bytes after a complete message are
/// tolerated by design (the frame layer delimits messages), but a frame
/// whose *first* byte is corrupted must always fail. The list includes
/// every *valid* opcode from both spaces (4–9, 130–135): the CRC seal
/// covers the opcode byte, so rewriting an MGet into a structurally
/// plausible Delete or Cas frame still dies at the checksum.
#[test]
fn corrupted_opcode_always_errors() {
    let req = Request::MGet {
        id: 3,
        keys: vec![Bytes::from_static(b"some-key")],
    };
    let good = req.encode();
    for bad_op in [0u8, 4, 5, 6, 7, 8, 9, 10, 42, 127, 130, 133, 135, 255] {
        let mut bytes = good.to_vec();
        bytes[0] = bad_op;
        assert!(
            Request::decode(Bytes::from(bytes.clone())).is_err(),
            "opcode {bad_op}"
        );
    }
}

/// Append a valid CRC-32 trailer to a hand-written body, producing a
/// frame that passes the checksum layer and reaches the structural
/// decoder — exactly what a version-skewed (but non-corrupting) peer
/// would send.
fn sealed(body: &[u8]) -> Bytes {
    let mut framed = body.to_vec();
    framed.extend_from_slice(&simdht_kvs::protocol::crc32(body).to_le_bytes());
    Bytes::from(framed)
}

/// Structural violations in the versioned verbs (Delete/Cas/Touch/SetEx/
/// SetMultiEx and their responses), sealed with a *valid* checksum so the
/// CRC layer cannot mask them: every entry must be rejected by both
/// decoders on framing grounds alone.
#[test]
fn sealed_malformed_versioned_frames_are_rejected() {
    let corpus: &[(&str, &[u8])] = &[
        ("delete header cut inside the id", &[5, 1, 2, 3]),
        (
            "delete key length overruns the frame",
            &[5, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, b'k'],
        ),
        (
            "cas header cut inside expected_version",
            &[6, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3],
        ),
        (
            "cas key length overruns the frame",
            &[
                6, 0, 0, 0, 0, 0, 0, 0, 0, // id
                1, 0, 0, 0, 0, 0, 0, 0, // expected_version
                0, 0, 0, 0, // ttl_secs
                9, 0, b'k', // klen 9, one byte of key
            ],
        ),
        (
            "cas value length u32::MAX with no value bytes",
            &[
                6, 0, 0, 0, 0, 0, 0, 0, 0, // id
                1, 0, 0, 0, 0, 0, 0, 0, // expected_version
                0, 0, 0, 0, // ttl_secs
                1, 0, b'k', // key
                255, 255, 255, 255, // vlen with nothing behind it
            ],
        ),
        (
            "touch header cut inside the ttl",
            &[7, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2],
        ),
        (
            "touch key length overruns the frame",
            &[7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, b'k'],
        ),
        (
            "set-ex value length overruns the frame",
            &[
                8, 0, 0, 0, 0, 0, 0, 0, 0, // id
                0, 0, 0, 0, // ttl_secs
                1, 0, b'k', // key
                255, 255, 255, 255, // vlen with nothing behind it
            ],
        ),
        (
            "set-multi-ex declares 65535 pairs with no payload",
            &[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255],
        ),
        (
            "delete response missing the status byte",
            &[132, 0, 0, 0, 0, 0, 0, 0, 0],
        ),
        (
            "cas response cut inside the version",
            &[133, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3],
        ),
        (
            "touch response missing the status byte",
            &[134, 0, 0, 0, 0, 0, 0, 0, 0],
        ),
        (
            "set-ex response cut inside the version",
            &[135, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3],
        ),
    ];
    for (what, body) in corpus {
        let b = sealed(body);
        assert!(Request::decode(b.clone()).is_err(), "request: {what}");
        assert!(Response::decode(b).is_err(), "response: {what}");
    }
}

/// Version tolerance: a status byte this build has no name for decodes to
/// `OpStatus::Unknown(b)` instead of being rejected, so a newer server
/// can extend the status space without breaking older clients. The
/// carrier frame itself is still CRC-sealed — tolerance applies to the
/// *value*, never to damage.
#[test]
fn unknown_status_bytes_decode_as_unknown() {
    // Delete response, id 7, status byte 250 (unassigned).
    let mut delete_body = vec![132u8];
    delete_body.extend_from_slice(&7u64.to_le_bytes());
    delete_body.push(250);
    match Response::decode(sealed(&delete_body)).expect("unknown status must decode") {
        Response::Delete { id, status } => {
            assert_eq!(id, 7);
            assert_eq!(status, OpStatus::Unknown(250));
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Cas response, id 9, status byte 200 (unassigned), version 31.
    let mut cas_body = vec![133u8];
    cas_body.extend_from_slice(&9u64.to_le_bytes());
    cas_body.push(200);
    cas_body.extend_from_slice(&31u64.to_le_bytes());
    let decoded = Response::decode(sealed(&cas_body)).expect("unknown status must decode");
    assert_eq!(
        decoded,
        Response::Cas {
            id: 9,
            status: OpStatus::Unknown(200),
            version: 31
        }
    );
    // And the tolerated value re-encodes to the identical sealed frame:
    // relaying an unknown status is lossless.
    assert_eq!(decoded.encode(), sealed(&cas_body));
}

/// Exhaustive damage sweep over a realistic encoded MGet response: a cut
/// at *every* byte boundary and a bit-flip at *every* position must leave
/// the decoder returning `Err` — never a panic, never a silently wrong
/// value. The CRC-32 trailer sealed onto every message is what turns
/// payload damage (which framing alone cannot see) into a typed error.
#[test]
fn every_damaged_mget_response_is_rejected() {
    let resp = Response::MGet {
        id: 0xFEED_BEEF,
        entries: vec![
            Some(Bytes::from_static(b"value-one")),
            None,
            Some(Bytes::from_static(b"a-somewhat-longer-second-value")),
            Some(Bytes::new()),
        ],
    };
    let full = resp.encode();
    for cut in 0..full.len() {
        assert!(
            Response::decode(full.slice(..cut)).is_err(),
            "truncation to {cut}/{} bytes decoded",
            full.len()
        );
    }
    for pos in 0..full.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bytes = full.to_vec();
            bytes[pos] ^= mask;
            assert!(
                Response::decode(Bytes::from(bytes)).is_err(),
                "flip {mask:#04x} at byte {pos} decoded"
            );
        }
    }
    assert_eq!(Response::decode(full).unwrap(), resp);
}

/// Same exhaustive damage sweep over an encoded SetMulti *request*: the
/// batched write verb is non-idempotent, so a damaged frame that decoded
/// to a plausible-but-different batch would corrupt the store silently.
/// Every truncation and every bit-flip must yield `Err`.
#[test]
fn every_damaged_set_multi_request_is_rejected() {
    let req = Request::SetMulti {
        id: 0xDEAD_0008,
        pairs: vec![
            (Bytes::from_static(b"key-one"), Bytes::from_static(b"v1")),
            (Bytes::from_static(b"k2"), Bytes::new()),
            (
                Bytes::from_static(b"a-longer-third-key"),
                Bytes::from_static(b"a-somewhat-longer-third-value"),
            ),
        ],
    };
    let full = req.encode();
    for cut in 0..full.len() {
        assert!(
            Request::decode(full.slice(..cut)).is_err(),
            "truncation to {cut}/{} bytes decoded",
            full.len()
        );
    }
    for pos in 0..full.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bytes = full.to_vec();
            bytes[pos] ^= mask;
            assert!(
                Request::decode(Bytes::from(bytes)).is_err(),
                "flip {mask:#04x} at byte {pos} decoded"
            );
        }
    }
    assert_eq!(Request::decode(full).unwrap(), req);
}

/// And over an encoded SetMulti *response*: a client pairing statuses
/// with a non-idempotent batch must never act on damaged acks — every
/// truncation and bit-flip (including flips that turn a status byte into
/// an out-of-range value) must be rejected.
#[test]
fn every_damaged_set_multi_response_is_rejected() {
    let resp = Response::SetMulti {
        id: 0xFACE_0008,
        ok: vec![true, false, true, true, false],
    };
    let full = resp.encode();
    for cut in 0..full.len() {
        assert!(
            Response::decode(full.slice(..cut)).is_err(),
            "truncation to {cut}/{} bytes decoded",
            full.len()
        );
    }
    for pos in 0..full.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bytes = full.to_vec();
            bytes[pos] ^= mask;
            assert!(
                Response::decode(Bytes::from(bytes)).is_err(),
                "flip {mask:#04x} at byte {pos} decoded"
            );
        }
    }
    assert_eq!(Response::decode(full).unwrap(), resp);
}

/// Exhaustive damage sweep over an encoded Cas *request*: CAS is the one
/// verb the client never resends, so a damaged frame that decoded to a
/// different-but-plausible compare-and-swap (wrong expected version,
/// wrong key, wrong value) would silently linearize the wrong write.
/// Every truncation and every bit-flip must yield `Err`.
#[test]
fn every_damaged_cas_request_is_rejected() {
    let req = Request::Cas {
        id: 0xCA5_0013,
        key: Bytes::from_static(b"contended-key"),
        expected_version: 41,
        value: Bytes::from_static(b"the-replacement-value"),
        ttl_secs: 300,
    };
    let full = req.encode();
    for cut in 0..full.len() {
        assert!(
            Request::decode(full.slice(..cut)).is_err(),
            "truncation to {cut}/{} bytes decoded",
            full.len()
        );
    }
    for pos in 0..full.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bytes = full.to_vec();
            bytes[pos] ^= mask;
            assert!(
                Request::decode(Bytes::from(bytes)).is_err(),
                "flip {mask:#04x} at byte {pos} decoded"
            );
        }
    }
    assert_eq!(Request::decode(full).unwrap(), req);
}

/// And over an encoded Cas *response*: the status byte decides whether
/// the client records a win or a conflict, and the version field seeds
/// its next attempt — a flipped bit in either must surface as a decode
/// error, not a wrong verdict.
#[test]
fn every_damaged_cas_response_is_rejected() {
    let resp = Response::Cas {
        id: 0xCA5_0014,
        status: OpStatus::ExistsConflict,
        version: 42,
    };
    let full = resp.encode();
    for cut in 0..full.len() {
        assert!(
            Response::decode(full.slice(..cut)).is_err(),
            "truncation to {cut}/{} bytes decoded",
            full.len()
        );
    }
    for pos in 0..full.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bytes = full.to_vec();
            bytes[pos] ^= mask;
            assert!(
                Response::decode(Bytes::from(bytes)).is_err(),
                "flip {mask:#04x} at byte {pos} decoded"
            );
        }
    }
    assert_eq!(Response::decode(full).unwrap(), resp);
}

/// The 16 MiB frame cap surfaces as a *typed* [`FrameTooLarge`] error on
/// both sides: writers refuse before sending, and readers refuse from the
/// 4-byte header alone — before allocating — so a hostile length prefix
/// cannot balloon memory.
#[test]
fn oversized_frames_yield_typed_errors_on_both_sides() {
    use simdht_kvs::net::{read_frame, write_frame, FrameTooLarge, MAX_FRAME_BYTES};

    let huge = vec![0u8; MAX_FRAME_BYTES + 1];
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &huge).unwrap_err();
    let typed = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<FrameTooLarge>())
        .expect("write side carries FrameTooLarge");
    assert_eq!(typed.len, MAX_FRAME_BYTES + 1);
    assert_eq!(typed.limit, MAX_FRAME_BYTES);
    assert!(sink.is_empty(), "nothing may hit the wire");

    let header = (u32::try_from(MAX_FRAME_BYTES).unwrap() + 1).to_le_bytes();
    let err = read_frame(&mut &header[..]).unwrap_err();
    let typed = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<FrameTooLarge>())
        .expect("read side carries FrameTooLarge");
    assert_eq!(typed.len, MAX_FRAME_BYTES + 1);
}

/// What one decoder run produced: the frames it yielded, plus how the
/// stream ended — cleanly, truncated mid-frame, or rejected with a typed
/// oversize error (carrying the hostile length so both paths must agree
/// on *what* they rejected, not just that they rejected).
#[derive(Debug, PartialEq)]
struct StreamVerdict {
    frames: Vec<Bytes>,
    end: StreamEnd,
}

#[derive(Debug, PartialEq)]
enum StreamEnd {
    Clean,
    TruncatedEof,
    TooLarge { len: usize },
}

fn classify(err: &std::io::Error) -> StreamEnd {
    use simdht_kvs::net::FrameTooLarge;
    if let Some(t) = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<FrameTooLarge>())
    {
        StreamEnd::TooLarge { len: t.len }
    } else {
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof,
            "only EOF and FrameTooLarge errors exist in this corpus: {err}"
        );
        StreamEnd::TruncatedEof
    }
}

/// Reference semantics: the blocking [`read_frame`] loop over the whole
/// stream, as the thread-per-connection server consumes it.
fn blocking_verdict(stream: &[u8]) -> StreamVerdict {
    use simdht_kvs::net::read_frame;
    let mut cur = std::io::Cursor::new(stream);
    let mut frames = Vec::new();
    let end = loop {
        match read_frame(&mut cur) {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => break StreamEnd::Clean,
            Err(e) => break classify(&e),
        }
    };
    StreamVerdict { frames, end }
}

/// The resumable path: feed the stream to a [`FrameDecoder`] in the given
/// chunks (as readiness events would deliver them), then signal EOF.
fn incremental_verdict(chunks: &[&[u8]]) -> StreamVerdict {
    use simdht_kvs::net::FrameDecoder;
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for chunk in chunks {
        if let Err(e) = dec.extend(chunk, &mut frames) {
            // First error poisons the decoder; the reactor drops the
            // connection here, so nothing after it counts.
            return StreamVerdict {
                frames,
                end: classify(&e),
            };
        }
    }
    let end = match dec.finish() {
        Ok(()) => StreamEnd::Clean,
        Err(e) => classify(&e),
    };
    StreamVerdict { frames, end }
}

/// The incremental [`FrameDecoder`] must be byte-for-byte equivalent to
/// the blocking [`read_frame`] loop **no matter how the stream is split**:
/// for every corpus stream — healthy multi-frame pipelines, zero-length
/// frames, oversized length prefixes, truncations inside the header and
/// inside the payload — the whole stream is replayed split at *every*
/// byte boundary (and once byte-at-a-time), and the decoded frames plus
/// the end-of-stream classification must match the blocking reference
/// exactly. This is the contract that lets the reactor and the
/// thread-per-connection server share one wire protocol.
#[test]
fn frame_decoder_matches_blocking_reader_at_every_split() {
    use simdht_kvs::net::{write_frame, MAX_FRAME_BYTES};

    let seal = |msgs: &[&[u8]]| -> Vec<u8> {
        let mut out = Vec::new();
        for m in msgs {
            write_frame(&mut out, m).expect("corpus frames fit");
        }
        out
    };
    let mget = Request::MGet {
        id: 7,
        keys: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"beta")],
    }
    .encode();
    let set = Request::Set {
        id: 8,
        key: Bytes::from_static(b"k"),
        value: Bytes::from_static(b"a-value-of-some-length"),
    }
    .encode();
    let set_multi = Request::SetMulti {
        id: 9,
        pairs: vec![
            (Bytes::from_static(b"k1"), Bytes::from_static(b"v1")),
            (Bytes::from_static(b"k2"), Bytes::from_static(b"v2")),
        ],
    }
    .encode();
    let resp = Response::MGet {
        id: 7,
        entries: vec![Some(Bytes::from_static(b"hit")), None],
    }
    .encode();
    let oversize_header = ((MAX_FRAME_BYTES as u32) + 1).to_le_bytes();

    let healthy = seal(&[&mget, &set, &set_multi, &resp]);
    let with_empty = seal(&[&mget, b"", &resp]);
    let mut oversize_mid = seal(&[&set]);
    oversize_mid.extend_from_slice(&oversize_header);
    oversize_mid.extend_from_slice(b"garbage that must never be buffered");
    let mut cut_header = seal(&[&mget]);
    cut_header.extend_from_slice(&seal(&[&set])[..2]);
    let mut cut_payload = seal(&[&mget]);
    let sealed_set = seal(&[&set]);
    cut_payload.extend_from_slice(&sealed_set[..sealed_set.len() - 3]);

    let corpus: &[(&str, &[u8])] = &[
        ("empty stream", &[]),
        ("three healthy frames", &healthy),
        ("zero-length frame in the middle", &with_empty),
        ("oversized prefix after a good frame", &oversize_mid),
        ("oversized prefix first", &oversize_header),
        ("eof inside the second header", &cut_header),
        ("eof inside the second payload", &cut_payload),
    ];

    for (what, stream) in corpus {
        let want = blocking_verdict(stream);
        for split in 0..=stream.len() {
            let got = incremental_verdict(&[&stream[..split], &stream[split..]]);
            assert_eq!(got, want, "{what}: split at byte {split}/{}", stream.len());
        }
        let bytes: Vec<&[u8]> = stream.chunks(1).collect();
        assert_eq!(
            incremental_verdict(&bytes),
            want,
            "{what}: byte-at-a-time delivery"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(resp.encode()).unwrap(), resp);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let b = Bytes::from(bytes);
        let _ = Request::decode(b.clone());
        let _ = Response::decode(b);
    }

    #[test]
    fn truncated_responses_never_decode(resp in arb_response(), cut in any::<prop::sample::Index>()) {
        // With the CRC trailer there is no benign truncation left: every
        // strict prefix of a sealed response frame must fail to decode.
        let full = resp.encode();
        let cut = cut.index(full.len());
        prop_assert!(Response::decode(full.slice(..cut)).is_err());
    }

    #[test]
    fn corrupted_responses_never_decode(
        resp in arb_response(),
        pos in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let full = resp.encode();
        let mut bytes = full.to_vec();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= mask;
        prop_assert!(Response::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn frame_decoder_split_equivalence(
        reqs in prop::collection::vec(arb_request(), 0..5),
        split in any::<prop::sample::Index>(),
        cut_tail in 0usize..4,
    ) {
        // Random pipelines, possibly truncated, split at a random byte:
        // incremental and blocking decoding must always agree.
        use simdht_kvs::net::write_frame;
        let mut stream = Vec::new();
        for r in &reqs {
            write_frame(&mut stream, &r.encode()).unwrap();
        }
        stream.truncate(stream.len().saturating_sub(cut_tail));
        let want = blocking_verdict(&stream);
        let cut = split.index(stream.len() + 1);
        let got = incremental_verdict(&[&stream[..cut], &stream[cut..]]);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn truncation_always_errors_or_shrinks(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let full = req.encode();
        if full.len() > 1 {
            let cut = 1 + cut.index(full.len() - 1);
            if cut < full.len() {
                // A strict prefix either fails to decode, or (for MGet with
                // trailing keys cut at a record boundary) decodes to fewer
                // keys — it must never decode to the identical message.
                if let Ok(decoded) = Request::decode(full.slice(..cut)) {
                    prop_assert_ne!(decoded, req, "truncated bytes decoded identically");
                }
            }
        }
    }
}
