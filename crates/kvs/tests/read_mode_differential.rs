//! Differential acceptance of the seqlock optimistic read path
//! (DESIGN.md §11): on a quiescent store the `optimistic` read mode must
//! be **observationally identical** to `locked` — byte-for-byte equal
//! CRC-sealed Multi-Get wire frames and equal single-key `get` results —
//! across every index family, shard count, and prefetch depth, on
//! batches spanning hits, misses, and full-hash-collision fallbacks
//! (the collision batches drive the optimistic path's per-key locked
//! assist). A final case replays the matrix through the fault-free TCP
//! daemon, once per read mode, comparing raw reply bytes.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use simdht_kvs::index::{self, hash_key};
use simdht_kvs::kvsd::Kvsd;
use simdht_kvs::net::TcpConn;
use simdht_kvs::protocol::{Request, Response};
use simdht_kvs::store::{KvStore, MGetResponse, ReadMode, StoreConfig};
use simdht_kvs::transport::ClientConn;

const INDEXES: [&str; 5] = ["memc3", "hor", "ver", "dpdk", "local"];
const DEPTHS: [usize; 2] = [0, 8];

/// Find two distinct keys with the same 32-bit FNV hash (birthday
/// search; deterministic). `prefix` de-correlates independent pairs.
fn collision_pair(prefix: &str) -> (Vec<u8>, Vec<u8>) {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for i in 0usize.. {
        let key = format!("{prefix}-{i:08x}").into_bytes();
        if let Some(&j) = seen.get(&hash_key(&key)) {
            let earlier = format!("{prefix}-{j:08x}").into_bytes();
            return (earlier, key);
        }
        seen.insert(hash_key(&key), i);
    }
    unreachable!("u32 hashes must collide")
}

/// Find two distinct keys that agree on the low 12 hash bits AND on
/// `hash >> 25` but differ in the full hash: same bucket and same 7-bit
/// tag in the localized (2,7) index, so its packed tag row reports a
/// candidate that only the full-hash check can reject.
fn tag_pair(prefix: &str) -> (Vec<u8>, Vec<u8>) {
    let mut seen: HashMap<u32, (usize, u32)> = HashMap::new();
    for i in 0usize.. {
        let key = format!("{prefix}-{i:08x}").into_bytes();
        let h = hash_key(&key);
        let class = (h & 0xFFF) | ((h >> 25) << 12);
        match seen.get(&class) {
            Some(&(j, hj)) if hj != h => {
                return (format!("{prefix}-{j:08x}").into_bytes(), key);
            }
            Some(_) => {}
            None => {
                seen.insert(class, (i, h));
            }
        }
    }
    unreachable!("19-bit tag classes must collide")
}

struct Corpus {
    items: Vec<(Vec<u8>, Vec<u8>)>,
    /// Inserted colliding pair: either key hits via the fallback scan.
    pair_both: (Vec<u8>, Vec<u8>),
    /// Only `.0` inserted; probing `.1` surfaces a candidate whose full
    /// key differs — the optimistic path must assist, then report a miss.
    pair_half: (Vec<u8>, Vec<u8>),
    /// Same bucket + same 7-bit tag, different full hashes; only `.0`
    /// inserted — the localized tag row flags a candidate the full-hash
    /// check must reject, in both read modes identically.
    tag_half: (Vec<u8>, Vec<u8>),
}

fn build_corpus() -> Corpus {
    let pair_both = collision_pair("col");
    let pair_half = collision_pair("dup");
    let tag_half = tag_pair("tagh");
    let mut items = Vec::new();
    for i in 0..600usize {
        let key = format!("k{i:0w$}", w = 5 + i % 20).into_bytes();
        let value = vec![(i % 251) as u8; (i * 7) % 121];
        items.push((key, value));
    }
    items.push((pair_both.0.clone(), b"first-of-colliding-pair".to_vec()));
    items.push((pair_both.1.clone(), b"second-of-colliding-pair".to_vec()));
    items.push((pair_half.0.clone(), b"only-inserted-collider".to_vec()));
    items.push((tag_half.0.clone(), b"only-inserted-tag-collider".to_vec()));
    Corpus {
        items,
        pair_both,
        pair_half,
        tag_half,
    }
}

/// Batches spanning the shapes that branch differently inside the
/// optimistic pass: empty, single hit, single miss, pure hits, pure
/// misses, interleaved, collision assists, and a 300-key batch longer
/// than any prefetch window.
fn query_batches(c: &Corpus) -> Vec<Vec<Vec<u8>>> {
    let key = |i: usize| c.items[i].0.clone();
    let miss = |i: usize| format!("absent-{i:06}").into_bytes();
    let mut batches = vec![
        vec![],
        vec![key(0)],
        vec![miss(0)],
        (0..40).map(key).collect::<Vec<_>>(),
        (0..40).map(miss).collect::<Vec<_>>(),
        (0..60)
            .map(|i| if i % 3 == 0 { miss(i) } else { key(i) })
            .collect::<Vec<_>>(),
        vec![
            c.pair_both.0.clone(),
            c.pair_both.1.clone(),
            c.pair_half.0.clone(),
            c.pair_half.1.clone(), // collides with an inserted key: must miss
            c.tag_half.0.clone(),
            c.tag_half.1.clone(), // same bucket + 7-bit tag: must miss
            key(5),
            miss(5),
        ],
    ];
    batches.push(
        (0..300)
            .map(|i| match i % 7 {
                0 => miss(i),
                1 => c.pair_both.1.clone(),
                2 => c.pair_half.1.clone(),
                _ => key(i % c.items.len()),
            })
            .collect(),
    );
    batches
}

fn store_with(which: &str, shards: usize, depth: usize, corpus: &Corpus) -> KvStore {
    let store = KvStore::with_shards(
        StoreConfig {
            memory_budget: 128 << 20,
            capacity_items: 4096,
            shards,
            prefetch_depth: Some(depth),
            ..StoreConfig::default()
        },
        |cap| index::by_short_name(which, cap).expect("known index"),
    );
    for (k, v) in &corpus.items {
        store.set(k, v).expect("preload");
    }
    store
}

fn sealed_frame(store: &KvStore, id: u64, batch: &[Vec<u8>]) -> Vec<u8> {
    let keys: Vec<&[u8]> = batch.iter().map(|k| k.as_slice()).collect();
    let mut resp = MGetResponse::new();
    store.mget(&keys, &mut resp);
    resp.seal_frame(id).to_vec()
}

#[test]
fn optimistic_mget_frames_are_bit_identical_to_locked() {
    let corpus = build_corpus();
    let batches = query_batches(&corpus);
    for which in INDEXES {
        for shards in [1usize, 4] {
            let store = store_with(which, shards, 0, &corpus);
            assert!(
                store.optimistic_capable(),
                "{which}: every stock index is expected to support optimistic probes"
            );
            for depth in DEPTHS {
                store.set_prefetch_depth(depth);
                for (b, batch) in batches.iter().enumerate() {
                    let id = (b as u64) << 8 | depth as u64;
                    store.set_read_mode(ReadMode::Locked);
                    let locked = sealed_frame(&store, id, batch);
                    store.set_read_mode(ReadMode::Optimistic);
                    let optimistic = sealed_frame(&store, id, batch);
                    assert_eq!(
                        optimistic, locked,
                        "{which}/{shards} shards, G={depth}, batch {b}: \
                         optimistic frame bytes diverged from locked",
                    );
                }
            }
            // The quiescent optimistic pass must actually have run (and
            // the collision batches must have taken the assist path).
            let stats = store.optimistic_stats();
            assert!(stats.commits > 0, "{which}: optimistic path never ran");
            assert!(
                stats.assists > 0,
                "{which}: collision batches never hit the locked assist"
            );
        }
    }
}

#[test]
fn optimistic_get_matches_locked_under_collisions() {
    let corpus = build_corpus();
    for which in INDEXES {
        let store = store_with(which, 1, 8, &corpus);
        for (k, v) in &corpus.items {
            store.set_read_mode(ReadMode::Locked);
            let locked = store.get(k);
            store.set_read_mode(ReadMode::Optimistic);
            assert_eq!(
                store.get(k),
                locked,
                "{which}: get({:?}) diverged",
                String::from_utf8_lossy(k),
            );
            assert_eq!(locked.as_deref(), Some(v.as_slice()), "{which}");
        }
        store.set_read_mode(ReadMode::Optimistic);
        assert_eq!(
            store.get(&corpus.pair_half.1),
            None,
            "{which}: colliding absent key must miss through the assist",
        );
        assert_eq!(store.get(b"absent-000000"), None, "{which}");
    }
}

/// The raw bytes a TCP client reads back must be identical whichever
/// read mode the server runs (CRC trailer included — `recv` hands back
/// the payload still carrying it).
#[test]
fn tcp_loopback_frames_identical_across_read_modes() {
    let corpus = build_corpus();
    let batches = query_batches(&corpus);
    let mut baseline: Option<Vec<Bytes>> = None;
    for mode in [ReadMode::Locked, ReadMode::Optimistic] {
        let store = Arc::new(store_with("hor", 4, 8, &corpus));
        store.set_read_mode(mode);
        let kvsd = Kvsd::bind(store, "127.0.0.1:0").expect("bind loopback");
        let mut conn = TcpConn::connect(kvsd.local_addr()).expect("connect");
        let mut frames = Vec::new();
        for (b, batch) in batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            conn.send(
                Request::MGet {
                    id: b as u64,
                    keys: batch.iter().map(|k| Bytes::copy_from_slice(k)).collect(),
                }
                .encode(),
            )
            .expect("send");
            let (payload, _) = conn.recv().expect("recv");
            assert!(matches!(
                Response::decode(payload.clone()),
                Ok(Response::MGet { .. })
            ));
            frames.push(payload);
        }
        drop(conn);
        kvsd.shutdown();
        match &baseline {
            None => baseline = Some(frames),
            Some(base) => assert_eq!(
                base,
                &frames,
                "TCP reply bytes changed between locked and {} reads",
                mode.name(),
            ),
        }
    }
}
