//! Differential acceptance of the batched write path (DESIGN.md §12):
//! replaying a write stream through `set_multi` must leave every index
//! family in a state byte-identical to the equivalent sequence of `set`
//! calls — per-key outcomes, occupancy, shard occupancies, single-key
//! gets, and CRC-sealed Multi-Get frames — across 1/4 shards, batch
//! sizes {1, 8, 64}, duplicate-keys-in-batch ordering, and CLOCK
//! eviction pressure.

use simdht_kvs::index;
use simdht_kvs::store::{KvStore, MGetResponse, SetMultiBatch, StoreConfig};

const INDEXES: [&str; 5] = ["memc3", "hor", "ver", "dpdk", "local"];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn new_store(which: &str, shards: usize, capacity: usize, budget: usize) -> KvStore {
    KvStore::with_shards(
        StoreConfig {
            memory_budget: budget,
            capacity_items: capacity,
            shards,
            prefetch_depth: Some(8),
            ..StoreConfig::default()
        },
        |cap| index::by_short_name(which, cap).expect("known index"),
    )
}

/// A deterministic write stream: roughly one third of the ops rewrite a
/// key issued earlier (replacement path, varying widths so the new value
/// can land in a different slab class), the rest insert fresh keys.
fn write_stream(n: usize, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = seed;
    let mut ops: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(n);
    for i in 0..n {
        let key = if i > 0 && splitmix64(&mut rng).is_multiple_of(3) {
            ops[(splitmix64(&mut rng) as usize) % i].0.clone()
        } else {
            format!("wr-{i:08}").into_bytes()
        };
        let width = (splitmix64(&mut rng) % 120) as usize;
        let mut value = vec![(i % 251) as u8; width.max(8)];
        value[..8].copy_from_slice(&(i as u64).to_le_bytes());
        ops.push((key, value));
    }
    ops
}

/// Every distinct key in the stream plus a band of never-written probes,
/// so the frame comparison covers hits, misses, and evicted keys alike.
fn probe_keys(ops: &[(Vec<u8>, Vec<u8>)]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
    keys.sort();
    keys.dedup();
    for i in 0..32 {
        keys.push(format!("absent-{i:06}").into_bytes());
    }
    keys
}

/// Occupancy, per-shard occupancy, single-key gets, and the sealed
/// Multi-Get wire frame must all agree between the two stores.
fn assert_stores_identical(tag: &str, seq: &KvStore, bat: &KvStore, probes: &[Vec<u8>]) {
    assert_eq!(seq.len(), bat.len(), "{tag}: occupancy diverged");
    assert_eq!(
        seq.shard_lens(),
        bat.shard_lens(),
        "{tag}: per-shard occupancy diverged",
    );
    for key in probes {
        assert_eq!(
            seq.get(key),
            bat.get(key),
            "{tag}: get({:?}) diverged",
            String::from_utf8_lossy(key),
        );
    }
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
    let mut seq_resp = MGetResponse::new();
    let mut bat_resp = MGetResponse::new();
    seq.mget(&refs, &mut seq_resp);
    bat.mget(&refs, &mut bat_resp);
    assert_eq!(
        seq_resp.seal_frame(0x5e7).to_vec(),
        bat_resp.seal_frame(0x5e7).to_vec(),
        "{tag}: sealed MGet frame bytes diverged",
    );
}

/// Replay `ops` through both stores — sequential `set` calls against
/// `seq`, `width`-sized `set_multi` batches against `bat` — asserting
/// per-op outcome parity as we go.
fn replay(tag: &str, seq: &KvStore, bat: &KvStore, ops: &[(Vec<u8>, Vec<u8>)], width: usize) {
    let mut scratch = SetMultiBatch::new();
    for (c, chunk) in ops.chunks(width).enumerate() {
        let seq_results: Vec<_> = chunk.iter().map(|(k, v)| seq.set(k, v)).collect();
        let pairs: Vec<(&[u8], &[u8])> = chunk
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        let outcome = bat.set_multi(&pairs, &mut scratch);
        assert_eq!(
            scratch.results(),
            &seq_results[..],
            "{tag}: per-key outcomes diverged in chunk {c}",
        );
        assert_eq!(
            outcome.stored,
            seq_results.iter().filter(|r| r.is_ok()).count(),
            "{tag}: stored count diverged in chunk {c}",
        );
    }
}

#[test]
fn batched_writes_are_bit_identical_across_batch_sizes_shards_and_indexes() {
    let ops = write_stream(600, 0x5e7_d1ff);
    let probes = probe_keys(&ops);
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            for width in BATCH_SIZES {
                let tag = format!("{which}/{shards} shards/batch {width}");
                let seq = new_store(which, shards, 4096, 128 << 20);
                let bat = new_store(which, shards, 4096, 128 << 20);
                replay(&tag, &seq, &bat, &ops, width);
                assert_stores_identical(&tag, &seq, &bat, &probes);
            }
        }
    }
}

/// Duplicate keys inside one batch must resolve in request order —
/// later-wins, exactly as the equivalent `set` sequence — including a
/// run where every pair targets the same key.
#[test]
fn duplicate_keys_in_one_batch_resolve_later_wins() {
    let dup = b"dup-key".to_vec();
    let ops: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (dup.clone(), b"v1".to_vec()),
        (dup.clone(), b"v2-wider-than-v1".to_vec()),
        (b"other-a".to_vec(), b"x".to_vec()),
        (dup.clone(), b"v3".to_vec()),
        (b"other-b".to_vec(), b"y".to_vec()),
        (dup.clone(), vec![0xAB; 90]),
        (dup.clone(), b"final".to_vec()),
    ];
    let probes = probe_keys(&ops);
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            let tag = format!("{which}/{shards} shards/dup batch");
            let seq = new_store(which, shards, 4096, 128 << 20);
            let bat = new_store(which, shards, 4096, 128 << 20);
            // The whole stream as one batch: every duplicate resolves
            // inside a single lock hold / seqlock write session.
            replay(&tag, &seq, &bat, &ops, ops.len());
            assert_stores_identical(&tag, &seq, &bat, &probes);
            assert_eq!(
                bat.get(&dup).as_deref(),
                Some(b"final".as_slice()),
                "{tag}: last write in the batch must win",
            );
        }
    }
}

/// Under index pressure both paths must evict the same CLOCK victims:
/// a small table, 8x overcommit, and identical reference-bit traffic
/// (an `mget` over a recency window between chunks) must leave the two
/// stores with the same survivors.
#[test]
fn eviction_pressure_picks_identical_clock_victims() {
    let n_ops = 2048usize;
    let mut rng = 0xC10C_4E01u64;
    let ops: Vec<(Vec<u8>, Vec<u8>)> = (0..n_ops)
        .map(|i| {
            let mut value = vec![0x33u8; 24 + (splitmix64(&mut rng) % 17) as usize];
            value[..8].copy_from_slice(&(i as u64).to_le_bytes());
            (format!("ev-{i:08}").into_bytes(), value)
        })
        .collect();
    let probes = probe_keys(&ops);
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            for width in [8usize, 64] {
                let tag = format!("{which}/{shards} shards/batch {width}/eviction");
                let seq = new_store(which, shards, 256, 64 << 20);
                let bat = new_store(which, shards, 256, 64 << 20);
                let mut scratch = SetMultiBatch::new();
                let mut seq_resp = MGetResponse::new();
                let mut bat_resp = MGetResponse::new();
                for (c, chunk) in ops.chunks(width).enumerate() {
                    let seq_results: Vec<_> = chunk.iter().map(|(k, v)| seq.set(k, v)).collect();
                    let pairs: Vec<(&[u8], &[u8])> = chunk
                        .iter()
                        .map(|(k, v)| (k.as_slice(), v.as_slice()))
                        .collect();
                    bat.set_multi(&pairs, &mut scratch);
                    assert_eq!(
                        scratch.results(),
                        &seq_results[..],
                        "{tag}: outcomes diverged in chunk {c}",
                    );
                    // Touch a trailing window of recent keys on both
                    // stores so CLOCK reference bits evolve identically
                    // and the next eviction pass has victims to skip.
                    let lo = (c * width).saturating_sub(width);
                    let hi = ((c + 1) * width).min(ops.len());
                    let window: Vec<&[u8]> =
                        ops[lo..hi].iter().map(|(k, _)| k.as_slice()).collect();
                    seq.mget(&window, &mut seq_resp);
                    bat.mget(&window, &mut bat_resp);
                }
                assert_stores_identical(&tag, &seq, &bat, &probes);
                assert!(
                    seq.totals().evictions > 0,
                    "{tag}: pressure case never evicted — table too large for the stream",
                );
            }
        }
    }
}
