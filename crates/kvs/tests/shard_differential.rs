//! Differential test (satellite of the sharded-store PR): a sharded
//! `KvStore` configured with **S = 1** must be bit-for-bit identical to
//! the classic single-lock store — same responses, same eviction victims,
//! same final contents — across a 10k-op seeded mixed workload that
//! includes CLOCK eviction pressure.
//!
//! The baseline below reimplements the pre-sharding store verbatim from
//! the same public components (`SlabAllocator` + `ItemTable` +
//! `HashIndex` + `Clock`, one lock, one arena). Because both sides are
//! deterministic given the same op sequence, *any* divergence — a
//! differently chosen eviction victim, an extra miss, a different
//! replace path — fails the test.

use rand::{Rng, SeedableRng};
use simdht_kvs::clock::Clock;
use simdht_kvs::index::{by_short_name, hash_key, HashIndex, IndexError};
use simdht_kvs::item::{item_key, item_value, write_item, ItemTable, NO_ITEM};
use simdht_kvs::slab::{SlabAllocator, SlabError};
use simdht_kvs::store::{KvStore, MGetResponse, StoreConfig};

/// The pre-sharding single-lock store: one slab arena, one item table,
/// one index, one CLOCK ring. Mirrors `KvStore`'s per-shard logic exactly
/// (replace-then-insert, evict-on-pressure in both the slab and index
/// loops, verify-against-slab on lookup, CLOCK touch on hit).
struct Baseline {
    slab: SlabAllocator,
    items: ItemTable,
    index: Box<dyn HashIndex>,
    clock: Clock,
    evictions: u64,
}

impl Baseline {
    fn new(which: &str, capacity: usize, budget: usize) -> Self {
        Baseline {
            slab: SlabAllocator::new(budget),
            items: ItemTable::new(),
            index: by_short_name(which, capacity).expect("known index"),
            clock: Clock::new(),
            evictions: 0,
        }
    }

    fn find_verified(&self, hash: u32, key: &[u8]) -> Option<u32> {
        let mut candidates = Vec::new();
        self.index.lookup_all(hash, &mut candidates);
        candidates.into_iter().find(|&c| {
            self.items
                .get(c)
                .is_some_and(|r| item_key(self.slab.chunk(r)) == key)
        })
    }

    fn delete_item(&mut self, hash: u32, item: u32) {
        self.index.remove(hash, item);
        self.clock.remove(item);
        if let Some(r) = self.items.unregister(item) {
            self.slab.free(r);
        }
    }

    fn evict_one(&mut self) -> bool {
        let Some(item) = self.clock.evict() else {
            return false;
        };
        if let Some(r) = self.items.unregister(item) {
            let hash = hash_key(item_key(self.slab.chunk(r)));
            self.index.remove(hash, item);
            self.slab.free(r);
        }
        self.evictions += 1;
        true
    }

    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), ()> {
        let hash = hash_key(key);
        if let Some(existing) = self.find_verified(hash, key) {
            self.delete_item(hash, existing);
        }
        let slab_ref = loop {
            match write_item(&mut self.slab, key, value) {
                Ok(r) => break r,
                Err(SlabError::ObjectTooLarge { .. }) => return Err(()),
                Err(SlabError::OutOfMemory) => {
                    if !self.evict_one() {
                        return Err(());
                    }
                }
            }
        };
        let item = self.items.register(slab_ref);
        loop {
            match self.index.insert(hash, item) {
                Ok(()) => break,
                Err(IndexError::Full) => {
                    if !self.evict_one() {
                        let r = self.items.unregister(item).expect("just registered");
                        self.slab.free(r);
                        return Err(());
                    }
                }
            }
        }
        self.clock.admit(item);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let hash = hash_key(key);
        // Single-key path through the batched pipeline, like the old store:
        // primary candidate first, then the lookup_all slow path.
        let mut candidates = vec![NO_ITEM];
        self.index.lookup_batch(&[hash], &mut candidates);
        let cand = candidates[0];
        let mut resolved = None;
        if cand != NO_ITEM {
            if let Some(r) = self.items.get(cand) {
                if item_key(self.slab.chunk(r)) == key {
                    resolved = Some((cand, r));
                }
            }
        }
        if resolved.is_none() && cand != NO_ITEM {
            let mut fallback = Vec::new();
            self.index.lookup_all(hash, &mut fallback);
            for &c in &fallback {
                if let Some(r) = self.items.get(c) {
                    if item_key(self.slab.chunk(r)) == key {
                        resolved = Some((c, r));
                        break;
                    }
                }
            }
        }
        resolved.map(|(item, r)| {
            self.clock.touch(item);
            item_value(self.slab.chunk(r)).to_vec()
        })
    }

    fn delete(&mut self, key: &[u8]) -> bool {
        let hash = hash_key(key);
        match self.find_verified(hash, key) {
            Some(item) => {
                self.delete_item(hash, item);
                true
            }
            None => false,
        }
    }
}

const OPS: usize = 10_000;
const KEYSPACE: usize = 600;

fn differential_run(which: &str, seed: u64) {
    // 1 MiB budget — exactly the per-shard floor at S=1 — against values
    // of up to 4000 B over 600 keys forces CLOCK eviction on both sides.
    let budget = 1 << 20;
    let capacity = 2 * KEYSPACE;
    let store = KvStore::new(
        by_short_name(which, capacity).expect("known index"),
        StoreConfig {
            memory_budget: budget,
            capacity_items: capacity,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
    );
    let mut base = Baseline::new(which, capacity, budget);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    for op in 0..OPS {
        let k = rng.gen_range(0..KEYSPACE);
        let key = format!("diff-key-{k:05}");
        let roll = rng.gen_range(0..100);
        if roll < 50 {
            let len = rng.gen_range(1..=4000);
            let fill = (k & 0xFF) as u8;
            let value = vec![fill; len];
            let s = store.set(key.as_bytes(), &value).is_ok();
            let b = base.set(key.as_bytes(), &value).is_ok();
            assert_eq!(s, b, "op {op}: set outcome diverged for {key}");
        } else if roll < 85 {
            let s = store.get(key.as_bytes());
            let b = base.get(key.as_bytes());
            assert_eq!(s, b, "op {op}: get diverged for {key}");
        } else {
            let s = store.delete(key.as_bytes());
            let b = base.delete(key.as_bytes());
            assert_eq!(s, b, "op {op}: delete diverged for {key}");
        }
    }

    // Eviction victims were identical iff the eviction *counts* and the
    // final contents agree (both sides are deterministic functions of the
    // victim sequence).
    assert!(
        base.evictions > 0,
        "workload must trigger eviction to be a meaningful differential"
    );
    assert_eq!(
        store.totals().evictions,
        base.evictions,
        "eviction counts diverged"
    );
    assert_eq!(store.len(), base.items.len(), "final sizes diverged");

    // Final scan over the whole keyspace, batched through the real MGet
    // path on the sharded side.
    let keys: Vec<String> = (0..KEYSPACE).map(|k| format!("diff-key-{k:05}")).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
    let mut resp = MGetResponse::new();
    store.mget(&refs, &mut resp);
    for (i, key) in keys.iter().enumerate() {
        assert_eq!(
            resp.value(i),
            base.get(key.as_bytes()).as_deref(),
            "final state diverged for {key}"
        );
    }
}

#[test]
fn single_shard_matches_baseline_memc3() {
    differential_run("memc3", 0xD1FF_0001);
}

#[test]
fn single_shard_matches_baseline_hor() {
    differential_run("hor", 0xD1FF_0002);
}

#[test]
fn single_shard_matches_baseline_ver() {
    differential_run("ver", 0xD1FF_0003);
}
