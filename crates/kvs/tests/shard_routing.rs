//! Property tests for the KVS shard-routing function (satellite of the
//! sharded-store PR): stability, uniformity within χ² bounds, and
//! agreement with `simdht_table::sharded::ShardedTable` for the same
//! multiply-shift parameters.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use simdht_kvs::index::{by_short_name, hash_key};
use simdht_kvs::store::{shard_route, KvStore, StoreConfig, SHARD_MUL};
use simdht_table::sharded::ShardedTable;
use simdht_table::Layout;

fn store_with(shards: usize) -> KvStore {
    KvStore::with_shards(
        StoreConfig {
            memory_budget: 8 << 20,
            capacity_items: 4096,
            shards,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
        |cap| by_short_name("hor", cap).expect("known index"),
    )
}

/// `shard_of` is a pure function of the key bytes: repeated calls and
/// independently constructed stores agree, and the result is in range.
#[test]
fn routing_is_stable_across_instances() {
    for shards in [1usize, 2, 4, 16] {
        let a = store_with(shards);
        let b = store_with(shards);
        assert_eq!(a.n_shards(), shards);
        assert_eq!(a.shard_params(), b.shard_params(), "routing params differ");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_0001);
        for _ in 0..2000 {
            let len = rng.gen_range(1..40);
            let key: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            let s = a.shard_of(&key);
            assert!(s < shards, "shard {s} out of range for {shards}");
            assert_eq!(s, a.shard_of(&key), "routing not idempotent");
            assert_eq!(s, b.shard_of(&key), "routing differs across instances");
        }
    }
}

/// χ² uniformity: 1e5 uniform random 20-byte keys over 16 shards. With
/// df = 15 the p = 0.001 critical value is 37.70; we allow 60 to keep the
/// (seeded, deterministic) test far from flakiness while still catching a
/// genuinely skewed router, which lands in the thousands.
#[test]
fn routing_is_uniform_chi_squared() {
    const SHARDS: usize = 16;
    const KEYS: usize = 100_000;
    let store = store_with(SHARDS);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC415_0001);
    let mut counts = [0u64; SHARDS];
    let mut key = [0u8; 20];
    for _ in 0..KEYS {
        for b in key.iter_mut() {
            *b = rng.gen::<u8>();
        }
        counts[store.shard_of(&key)] += 1;
    }
    let expected = KEYS as f64 / SHARDS as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    assert!(
        chi2 < 60.0,
        "χ² = {chi2:.1} over {SHARDS} shards (counts {counts:?})"
    );
}

/// The store and `shard_route` agree: `shard_of` is exactly the free
/// function applied to the FNV hash with the store's own parameters.
#[test]
fn store_matches_free_routing_function() {
    for shards in [1usize, 4, 8, 32] {
        let store = store_with(shards);
        let (mul, shift, mask) = store.shard_params();
        assert_eq!(mul, SHARD_MUL);
        assert_eq!(mask, shards - 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED_0002);
        for _ in 0..1000 {
            let len = rng.gen_range(1..32);
            let key: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            assert_eq!(
                store.shard_of(&key),
                shard_route(hash_key(&key), mul, shift, mask)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `ShardedTable` uses the same multiply-shift scheme over u32 keys;
    /// for the table's own `(mul, shift, mask)` parameters, `shard_route`
    /// reproduces its placement exactly — the two layers agree on what
    /// the routing function *is*.
    #[test]
    fn table_and_kvs_routing_schemes_agree(key in any::<u32>(), log2_shards in 0u32..6) {
        let table: ShardedTable<u32, u32> =
            ShardedTable::new(Layout::bcht(2, 4), 4, 1 << log2_shards)
                .expect("table construction");
        let (mul, shift, mask) = table.shard_params();
        prop_assert_eq!(table.shard_of(key), shard_route(key, mul, shift, mask));
    }

    /// Arbitrary keys route in range and stably through the KvStore.
    #[test]
    fn kvs_routing_in_range(key in prop::collection::vec(any::<u8>(), 1..48)) {
        let store = store_with(16);
        let s = store.shard_of(&key);
        prop_assert!(s < 16);
        prop_assert_eq!(s, store.shard_of(&key));
    }

    /// A set key is retrievable, i.e. routing at write time and read time
    /// lands on the same shard for any key.
    #[test]
    fn routed_writes_are_readable(key in prop::collection::vec(any::<u8>(), 1..40)) {
        let store = store_with(8);
        store.set(&key, b"routed").expect("set fits");
        prop_assert_eq!(store.get(&key), Some(b"routed".to_vec()));
    }
}
