//! Deterministic multi-threaded stress oracle for the sharded `KvStore`.
//!
//! N writer threads and M reader threads, all driven by seeded RNGs, run
//! against the sharded store while a **sequencing log** (per-key
//! `started`/`completed` write counters) plus an oracle `HashMap` model
//! check linearizability per key:
//!
//! * every value a reader observes was actually written for that key
//!   (key-prefixed, checksum-free encoding: `key|seq`),
//! * the observed sequence number is bounded by the log: it is `< started`
//!   sampled after the read and `>= completed - 1` sampled before the
//!   read (replace semantics delete the older item under the same shard
//!   write lock, so stale values can never resurface),
//! * per reader, per key, observed sequence numbers never go backwards
//!   (each key lives in exactly one shard, so per-key operations are
//!   serialized through one `RwLock`),
//! * a miss is only legal when the key was never completed, a delete has
//!   started on it, or the store is configured small enough that CLOCK
//!   eviction may have removed it.
//!
//! Rounds with `delete_prob > 0` mix `KvStore::delete` into the writer
//! streams; deletes consume sequence numbers in the log, so a deleted
//! value resurfacing fails the freshness bound.
//!
//! After the threads join (loss-free shutdown: `KvStore` spawns no
//! threads, so joining the harness threads quiesces the store), the store
//! must agree with the oracle `HashMap` exactly, and the per-shard
//! statistic counters must conserve: summed over shards they equal the
//! global totals and the harness's own ground-truth op counts.
//!
//! The number of seeded repetitions is `SHARD_STRESS_SEEDS` (default 3;
//! CI runs 100 in release mode with 8 test threads).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::{Rng, SeedableRng};
use simdht_kvs::index::by_short_name;
use simdht_kvs::store::{KvStore, MGetResponse, ShardStats, StoreConfig};

const WRITERS: usize = 4;
const READERS: usize = 4;
const KEYS_PER_WRITER: usize = 64;
const OPS_PER_WRITER: usize = 400;
const OPS_PER_READER: usize = 800;

fn n_seeds() -> u64 {
    std::env::var("SHARD_STRESS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn key_of(w: usize, i: usize) -> String {
    format!("w{w:02}-k{i:04}")
}

/// Encode `key|seq`, zero-padding the sequence field to `pad` digits.
/// The eviction variant uses a large pad so every value lands in one big
/// slab class and saturates the per-shard page budget (slab pages never
/// migrate between classes, so cross-class pressure would deadlock the
/// evictor instead of exercising it).
fn value_of(key: &str, seq: u64, pad: usize) -> Vec<u8> {
    format!("{key}|{seq:0pad$}").into_bytes()
}

/// Parse `key|seq`, asserting the key prefix matches (the value really was
/// written for this key, not spliced from another item).
fn parse_value(key: &str, value: &[u8]) -> u64 {
    let s = std::str::from_utf8(value).expect("stress values are ascii");
    let (k, seq) = s.rsplit_once('|').expect("stress values are key|seq");
    assert_eq!(k, key, "value stored under the wrong key");
    seq.parse().expect("sequence number parses")
}

struct StressOutcome {
    /// Ground-truth successful set calls, counted by the harness.
    sets_issued: u64,
    /// Ground-truth deletes that removed a live item (the store's
    /// `deletes` counter only counts those).
    deletes_hit: u64,
    /// Final per-key *operation* counts — every set and delete consumes
    /// one sequence number, so a live key's last value carries seq
    /// `count - 1`.
    final_seq: Vec<Vec<u64>>,
    /// Whether each key's final operation was a set (true) or a delete /
    /// never-written (false).
    final_live: Vec<Vec<bool>>,
    /// Zero-pad width the round encoded values with.
    pad: usize,
}

/// Run one seeded stress round against `store`. `eviction_possible`
/// selects whether a miss on a completed key is legal; `pad` sets the
/// zero-pad width of the sequence field (and thus the value size);
/// `delete_prob` is the per-op probability that a writer deletes the
/// picked key instead of setting it.
///
/// Deletes are first-class in the sequencing log: each one consumes a
/// sequence number, so a reader that observes a value whose set completed
/// *before* a completed delete fails the freshness bound — a deleted
/// value resurfacing (e.g. via a recycled slab chunk) is caught, not just
/// torn bytes. A miss is legal only when nothing ever completed for the
/// key, a delete has started on it, or eviction is possible.
fn stress_round(
    store: &Arc<KvStore>,
    seed: u64,
    eviction_possible: bool,
    pad: usize,
    delete_prob: f64,
) -> StressOutcome {
    // The sequencing log: started[w][i] = ops begun, completed[w][i] =
    // ops finished, del_started[w][i] = deletes begun, for writer w's
    // key i.
    let started: Vec<Vec<AtomicU64>> = (0..WRITERS)
        .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
        .collect();
    let completed: Vec<Vec<AtomicU64>> = (0..WRITERS)
        .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
        .collect();
    let del_started: Vec<Vec<AtomicU64>> = (0..WRITERS)
        .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
        .collect();
    let final_live: Vec<Vec<AtomicU64>> = (0..WRITERS)
        .map(|_| (0..KEYS_PER_WRITER).map(|_| AtomicU64::new(0)).collect())
        .collect();
    let sets_issued = AtomicU64::new(0);
    let deletes_hit = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let store = Arc::clone(store);
            let started = &started;
            let completed = &completed;
            let del_started = &del_started;
            let final_live = &final_live;
            let sets_issued = &sets_issued;
            let deletes_hit = &deletes_hit;
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (w as u64),
                );
                let mut next_seq = vec![0u64; KEYS_PER_WRITER];
                let mut live = [false; KEYS_PER_WRITER];
                for _ in 0..OPS_PER_WRITER {
                    let i = rng.gen_range(0..KEYS_PER_WRITER);
                    let key = key_of(w, i);
                    let seq = next_seq[i];
                    if delete_prob > 0.0 && rng.gen::<f64>() < delete_prob {
                        // Publish intent before the delete begins...
                        del_started[w][i].fetch_add(1, Ordering::SeqCst);
                        started[w][i].store(seq + 1, Ordering::SeqCst);
                        let removed = store.delete(key.as_bytes());
                        completed[w][i].store(seq + 1, Ordering::SeqCst);
                        if !eviction_possible {
                            // Each key has exactly one writer: with no
                            // eviction, delete's answer is determined.
                            assert_eq!(removed, live[i], "{key}: delete return disagrees");
                        }
                        if removed {
                            deletes_hit.fetch_add(1, Ordering::Relaxed);
                        }
                        live[i] = false;
                    } else {
                        // Publish intent before the write begins...
                        started[w][i].store(seq + 1, Ordering::SeqCst);
                        store
                            .set(key.as_bytes(), &value_of(&key, seq, pad))
                            .expect("stress writes fit the store");
                        // ...and completion after it returns.
                        completed[w][i].store(seq + 1, Ordering::SeqCst);
                        sets_issued.fetch_add(1, Ordering::Relaxed);
                        live[i] = true;
                    }
                    next_seq[i] = seq + 1;
                }
                for (i, &l) in live.iter().enumerate() {
                    final_live[w][i].store(u64::from(l), Ordering::SeqCst);
                }
            });
        }
        for r in 0..READERS {
            let store = Arc::clone(store);
            let started = &started;
            let completed = &completed;
            let del_started = &del_started;
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed.wrapping_mul(0xD1B5_4A32_D192_ED03) ^ (0xBEEF + r as u64),
                );
                let mut resp = MGetResponse::new();
                let mut last_seen = vec![vec![None::<u64>; KEYS_PER_WRITER]; WRITERS];
                for _ in 0..OPS_PER_READER {
                    let w = rng.gen_range(0..WRITERS);
                    let i = rng.gen_range(0..KEYS_PER_WRITER);
                    let key = key_of(w, i);
                    let floor = completed[w][i].load(Ordering::SeqCst);
                    store.mget(&[key.as_bytes()], &mut resp);
                    let after = started[w][i].load(Ordering::SeqCst);
                    match resp.value(0) {
                        Some(v) => {
                            let seq = parse_value(&key, v);
                            assert!(
                                seq < after,
                                "{key}: read seq {seq} never started (started {after})"
                            );
                            assert!(
                                seq + 1 >= floor,
                                "{key}: read stale seq {seq}, {floor} ops \
                                 had completed before the read"
                            );
                            if let Some(prev) = last_seen[w][i] {
                                assert!(
                                    seq >= prev,
                                    "{key}: per-key sequence went backwards \
                                     ({prev} then {seq})"
                                );
                            }
                            last_seen[w][i] = Some(seq);
                        }
                        None => {
                            if !eviction_possible && del_started[w][i].load(Ordering::SeqCst) == 0 {
                                assert_eq!(
                                    floor, 0,
                                    "{key}: completed write lost without eviction"
                                );
                            }
                        }
                    }
                }
            });
        }
    });

    let final_seq: Vec<Vec<u64>> = started
        .iter()
        .map(|row| row.iter().map(|a| a.load(Ordering::SeqCst)).collect())
        .collect();
    // Quiesced: started == completed once all writers joined.
    for (s_row, c_row) in final_seq.iter().zip(&completed) {
        for (i, &s) in s_row.iter().enumerate() {
            assert_eq!(s, c_row[i].load(Ordering::SeqCst), "writer did not drain");
        }
    }
    StressOutcome {
        sets_issued: sets_issued.load(Ordering::Relaxed),
        deletes_hit: deletes_hit.load(Ordering::Relaxed),
        final_seq,
        final_live: final_live
            .iter()
            .map(|row| row.iter().map(|a| a.load(Ordering::SeqCst) != 0).collect())
            .collect(),
        pad,
    }
}

/// Check the per-shard counters conserve against the global totals and the
/// harness ground truth.
fn check_conservation(store: &KvStore, outcome: &StressOutcome) {
    let totals = store.totals();
    let mut summed = ShardStats::default();
    for s in store.shard_stats() {
        summed.add(&s);
    }
    assert_eq!(summed, totals, "sum over shards must equal global totals");
    assert_eq!(totals.sets, outcome.sets_issued, "set counter conservation");
    assert_eq!(
        totals.deletes, outcome.deletes_hit,
        "delete counter conservation"
    );
    assert_eq!(totals.items, store.len(), "item counter conservation");
    assert_eq!(
        store.shard_lens().iter().sum::<usize>(),
        store.len(),
        "per-shard lengths must sum to the store length"
    );
}

/// Compare the quiesced store against the oracle `HashMap` model: with no
/// eviction possible, the store holds exactly the last completed write of
/// every key whose final operation was a set, and nothing else.
fn check_oracle(store: &KvStore, outcome: &StressOutcome) {
    let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
    for (w, row) in outcome.final_seq.iter().enumerate() {
        for (i, &count) in row.iter().enumerate() {
            if count > 0 && outcome.final_live[w][i] {
                let key = key_of(w, i);
                let v = value_of(&key, count - 1, outcome.pad);
                oracle.insert(key, v);
            }
        }
    }
    assert_eq!(
        store.len(),
        oracle.len(),
        "store and oracle disagree on size"
    );
    // One batched cross-shard Multi-Get over the full oracle key set.
    let keys: Vec<&String> = oracle.keys().collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
    let mut resp = MGetResponse::new();
    let got = store.mget(&refs, &mut resp);
    assert_eq!(got.found, oracle.len(), "oracle keys must all be found");
    for (j, key) in keys.iter().enumerate() {
        assert_eq!(
            resp.value(j),
            Some(oracle[*key].as_slice()),
            "{key}: final value must be the last completed write"
        );
    }
}

fn roomy_store(shards: usize, index: &str) -> Arc<KvStore> {
    Arc::new(KvStore::with_shards(
        StoreConfig {
            memory_budget: 64 << 20,
            capacity_items: 4 * WRITERS * KEYS_PER_WRITER,
            shards,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
        |cap| by_short_name(index, cap).expect("known index"),
    ))
}

#[test]
fn stress_oracle_sharded_no_eviction() {
    for seed in 0..n_seeds() {
        for index in ["memc3", "ver"] {
            let store = roomy_store(8, index);
            let outcome = stress_round(&store, seed, false, 8, 0.0);
            check_conservation(&store, &outcome);
            check_oracle(&store, &outcome);
            assert_eq!(store.totals().evictions, 0, "budget was roomy");
            // Loss-free shutdown: dropping the last handle after the
            // threads joined must be a plain deallocation.
            drop(store);
        }
    }
}

#[test]
fn stress_oracle_with_deletes() {
    // A quarter of every writer's ops delete the picked key. The oracle
    // checks the full lifecycle: delete returns exactly whether the key
    // was live (single writer per key, no eviction), readers never see a
    // value older than a completed delete, the quiesced store holds
    // exactly the finally-live keys, and the per-shard delete counters
    // conserve against the harness ground truth.
    for seed in 0..n_seeds() {
        for index in ["memc3", "hor"] {
            let store = roomy_store(8, index);
            let outcome = stress_round(&store, seed, false, 8, 0.25);
            assert!(outcome.deletes_hit > 0, "deletes must actually land");
            check_conservation(&store, &outcome);
            check_oracle(&store, &outcome);
            assert_eq!(store.totals().evictions, 0, "budget was roomy");
        }
    }
}

#[test]
fn stress_oracle_single_shard_degenerates() {
    // S=1 must satisfy the same oracle (the classic single-lock store).
    for seed in 0..n_seeds().min(3) {
        let store = roomy_store(1, "hor");
        let outcome = stress_round(&store, seed, false, 8, 0.0);
        check_conservation(&store, &outcome);
        check_oracle(&store, &outcome);
    }
}

#[test]
fn stress_oracle_under_eviction_pressure() {
    // A deliberately tight budget: CLOCK eviction races the readers. The
    // per-key linearizability assertions must still hold; only presence is
    // relaxed (a miss is legal once eviction is possible).
    //
    // pad = 32_000 puts every value in one ~32 KiB slab class: each shard
    // gets a single 1 MiB page (the per-shard floor) of ~32 chunks, while
    // ~64 distinct keys route to each of the 4 shards — so CLOCK must
    // evict continuously, and every eviction frees a reusable same-class
    // chunk (writers never dead-end on cross-class pressure).
    for seed in 0..n_seeds() {
        let store = Arc::new(KvStore::with_shards(
            StoreConfig {
                memory_budget: 4 << 20,
                capacity_items: WRITERS * KEYS_PER_WRITER,
                shards: 4,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
            |cap| by_short_name("hor", cap).expect("known index"),
        ));
        let outcome = stress_round(&store, seed, true, 32_000, 0.0);
        // Presence is not guaranteed, but counters must still conserve.
        let totals = store.totals();
        assert!(totals.evictions > 0, "tight budget must force evictions");
        assert_eq!(
            totals.sets, outcome.sets_issued,
            "set counter conservation under eviction"
        );
        let mut summed = ShardStats::default();
        for s in store.shard_stats() {
            summed.add(&s);
        }
        assert_eq!(summed, totals);
        assert_eq!(totals.items, store.len());
    }
}

#[test]
fn stress_shutdown_drops_mid_flight_handles() {
    // Loss-free shutdown from the other side: the main handle goes away
    // first, worker threads finish their ops and the last one drops the
    // store. Joining afterwards must observe every write acknowledged.
    for seed in 0..n_seeds().min(5) {
        let store = roomy_store(8, "ver");
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (w as u64) << 8);
                    let mut acked = 0u64;
                    for _ in 0..OPS_PER_WRITER {
                        let i = rng.gen_range(0..KEYS_PER_WRITER);
                        let key = key_of(w, i);
                        store
                            .set(key.as_bytes(), &value_of(&key, acked, 8))
                            .unwrap();
                        acked += 1;
                    }
                    acked
                })
            })
            .collect();
        drop(store);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (WRITERS * OPS_PER_WRITER) as u64);
    }
}
