//! Differential acceptance of the versioned-operation layer (DESIGN.md
//! §13): with TTLs disabled (`ttl_secs == 0`) the versioned write
//! surface — `set_v`, `set_multi_ttl`, no-op `touch`/`set_ttl` calls,
//! `get_v` probes — must leave every index family in a state
//! byte-identical to the plain `set`/`set_multi` path: occupancy,
//! per-shard occupancy, single-key gets, and CRC-sealed Multi-Get wire
//! frames. And with TTLs *enabled*, an expired item must be
//! indistinguishable on the wire from one that never existed.

use simdht_kvs::index;
use simdht_kvs::store::{KvStore, MGetResponse, SetMultiBatch, StoreConfig};

const INDEXES: [&str; 5] = ["memc3", "hor", "ver", "dpdk", "local"];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn new_store(which: &str, shards: usize, capacity: usize, budget: usize) -> KvStore {
    KvStore::with_shards(
        StoreConfig {
            memory_budget: budget,
            capacity_items: capacity,
            shards,
            prefetch_depth: Some(8),
            ..StoreConfig::default()
        },
        |cap| index::by_short_name(which, cap).expect("known index"),
    )
}

/// A deterministic write stream: roughly one third of the ops rewrite a
/// key issued earlier, the rest insert fresh keys (same recipe as
/// `set_multi_differential.rs`).
fn write_stream(n: usize, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = seed;
    let mut ops: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(n);
    for i in 0..n {
        let key = if i > 0 && splitmix64(&mut rng).is_multiple_of(3) {
            ops[(splitmix64(&mut rng) as usize) % i].0.clone()
        } else {
            format!("tw-{i:08}").into_bytes()
        };
        let width = (splitmix64(&mut rng) % 120) as usize;
        let mut value = vec![(i % 251) as u8; width.max(8)];
        value[..8].copy_from_slice(&(i as u64).to_le_bytes());
        ops.push((key, value));
    }
    ops
}

fn probe_keys(ops: &[(Vec<u8>, Vec<u8>)]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
    keys.sort();
    keys.dedup();
    for i in 0..32 {
        keys.push(format!("absent-{i:06}").into_bytes());
    }
    keys
}

/// Occupancy, per-shard occupancy, single-key gets, and the sealed
/// Multi-Get wire frame must all agree between the two stores.
fn assert_stores_identical(tag: &str, plain: &KvStore, ver: &KvStore, probes: &[Vec<u8>]) {
    assert_eq!(plain.len(), ver.len(), "{tag}: occupancy diverged");
    assert_eq!(
        plain.shard_lens(),
        ver.shard_lens(),
        "{tag}: per-shard occupancy diverged",
    );
    for key in probes {
        assert_eq!(
            plain.get(key),
            ver.get(key),
            "{tag}: get({:?}) diverged",
            String::from_utf8_lossy(key),
        );
    }
    assert_frames_identical(tag, plain, ver, probes);
}

/// The sealed Multi-Get wire frames alone (no occupancy comparison — the
/// expiry test leaves dead-but-unreclaimed items behind by design).
fn assert_frames_identical(tag: &str, a: &KvStore, b: &KvStore, probes: &[Vec<u8>]) {
    let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
    let mut a_resp = MGetResponse::new();
    let mut b_resp = MGetResponse::new();
    a.mget(&refs, &mut a_resp);
    b.mget(&refs, &mut b_resp);
    assert_eq!(
        a_resp.seal_frame(0x771).to_vec(),
        b_resp.seal_frame(0x771).to_vec(),
        "{tag}: sealed MGet frame bytes diverged",
    );
}

/// Replay `ops` through both stores: plain `set`/`set_multi` against
/// `plain`, the versioned surface with `ttl_secs == 0` against `ver` —
/// interleaving no-op `touch`/`set_ttl(0)` calls and `get_v` probes on
/// the versioned store, none of which may perturb its bytes. Version
/// chains are asserted as we go: fresh keys start at 1, every replace
/// bumps by exactly 1.
fn replay_versioned(
    tag: &str,
    plain: &KvStore,
    ver: &KvStore,
    ops: &[(Vec<u8>, Vec<u8>)],
    width: usize,
) {
    let mut scratch = SetMultiBatch::new();
    for (c, chunk) in ops.chunks(width).enumerate() {
        if c % 2 == 0 {
            // Odd-width path: singles through set vs set_v(ttl=0).
            for (k, v) in chunk {
                let prev = ver.get_v(k).map(|(_, version)| version);
                let plain_result = plain.set(k, v);
                let ver_result = ver.set_v(k, v, 0);
                match (&plain_result, &ver_result) {
                    (Ok(()), Ok(version)) => {
                        assert_eq!(
                            *version,
                            prev.unwrap_or(0) + 1,
                            "{tag}: version chain broke in chunk {c}",
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "{tag}: errors diverged in chunk {c}"),
                    (a, b) => panic!("{tag}: outcomes diverged in chunk {c}: {a:?} vs {b:?}"),
                }
            }
        } else {
            // Batched path: set_multi vs set_multi_ttl(ttl=0).
            let pairs: Vec<(&[u8], &[u8])> = chunk
                .iter()
                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                .collect();
            let plain_results: Vec<_> = {
                let outcome = plain.set_multi(&pairs, &mut scratch);
                let r = scratch.results().to_vec();
                assert_eq!(outcome.stored, r.iter().filter(|x| x.is_ok()).count());
                r
            };
            let ver_outcome = ver.set_multi_ttl(&pairs, 0, &mut scratch);
            assert_eq!(
                scratch.results(),
                &plain_results[..],
                "{tag}: per-key outcomes diverged in chunk {c}",
            );
            assert_eq!(
                ver_outcome.stored,
                plain_results.iter().filter(|r| r.is_ok()).count(),
                "{tag}: stored count diverged in chunk {c}",
            );
        }
        // No-op TTL maintenance on the versioned store only: touch and
        // set_ttl with 0 ("never expires") on already-never-expiring
        // items must not move a single byte.
        if let Some((k, _)) = chunk.first() {
            ver.touch(k, 0);
            ver.set_ttl(k, 0);
            let _ = ver.get_v(k);
        }
    }
}

#[test]
fn zero_ttl_versioned_writes_are_bit_identical() {
    let ops = write_stream(600, 0x77_1d1f);
    let probes = probe_keys(&ops);
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            for width in BATCH_SIZES {
                let tag = format!("{which}/{shards} shards/batch {width}/ttl0");
                let plain = new_store(which, shards, 4096, 128 << 20);
                let ver = new_store(which, shards, 4096, 128 << 20);
                replay_versioned(&tag, &plain, &ver, &ops, width);
                assert_stores_identical(&tag, &plain, &ver, &probes);
                assert_eq!(
                    ver.totals().expired,
                    0,
                    "{tag}: nothing may expire with ttl 0",
                );
            }
        }
    }
}

/// Under CLOCK pressure the two write surfaces must also pick identical
/// eviction victims: 8x overcommit with interleaved recency traffic.
#[test]
fn zero_ttl_versioned_writes_pick_identical_clock_victims() {
    let n_ops = 2048usize;
    let mut rng = 0x77_1C10u64;
    let ops: Vec<(Vec<u8>, Vec<u8>)> = (0..n_ops)
        .map(|i| {
            let mut value = vec![0x55u8; 24 + (splitmix64(&mut rng) % 17) as usize];
            value[..8].copy_from_slice(&(i as u64).to_le_bytes());
            (format!("tev-{i:08}").into_bytes(), value)
        })
        .collect();
    let probes = probe_keys(&ops);
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            let tag = format!("{which}/{shards} shards/ttl0 eviction");
            let plain = new_store(which, shards, 256, 64 << 20);
            let ver = new_store(which, shards, 256, 64 << 20);
            let mut plain_resp = MGetResponse::new();
            let mut ver_resp = MGetResponse::new();
            for (c, chunk) in ops.chunks(32).enumerate() {
                let plain_results: Vec<_> = chunk.iter().map(|(k, v)| plain.set(k, v)).collect();
                for ((k, v), want) in chunk.iter().zip(&plain_results) {
                    let got = ver.set_v(k, v, 0).map(|_| ());
                    assert_eq!(&got, want, "{tag}: outcomes diverged in chunk {c}");
                }
                // Identical reference-bit traffic on both stores.
                let lo = (c * 32).saturating_sub(32);
                let hi = ((c + 1) * 32).min(ops.len());
                let window: Vec<&[u8]> = ops[lo..hi].iter().map(|(k, _)| k.as_slice()).collect();
                plain.mget(&window, &mut plain_resp);
                ver.mget(&window, &mut ver_resp);
            }
            assert_stores_identical(&tag, &plain, &ver, &probes);
            assert!(
                plain.totals().evictions > 0,
                "{tag}: pressure case never evicted",
            );
        }
    }
}

/// With TTLs *enabled*: after the clock passes their deadline, expired
/// items must be indistinguishable on the wire from keys that were never
/// written at all — same single-key gets, same sealed Multi-Get frames —
/// even though the dead items still occupy slots until lazily reclaimed.
#[test]
fn expired_items_answer_like_never_written_keys() {
    for which in INDEXES {
        for shards in SHARD_COUNTS {
            let tag = format!("{which}/{shards} shards/expiry");
            // `full` gets every key; `sparse` only the immortal ones.
            let full = new_store(which, shards, 4096, 128 << 20);
            let sparse = new_store(which, shards, 4096, 128 << 20);
            let mut probes: Vec<Vec<u8>> = Vec::new();
            for i in 0..200usize {
                let key = format!("exp-{i:04}").into_bytes();
                let value = format!("val-{i:04}-payload").into_bytes();
                if i % 3 == 0 {
                    // Mortal: 60 s TTL, written only to `full`.
                    full.set_v(&key, &value, 60).expect("mortal set");
                } else {
                    full.set(&key, &value).expect("immortal set");
                    sparse.set(&key, &value).expect("immortal set");
                }
                probes.push(key);
            }
            probes.push(b"exp-never-written".to_vec());
            full.advance_time(61);
            for (i, key) in probes.iter().enumerate() {
                if i < 200 && i % 3 == 0 {
                    assert_eq!(full.get(key), None, "{tag}: expired key {i} still answers");
                    assert_eq!(
                        full.get_v(key),
                        None,
                        "{tag}: expired key {i} has a version"
                    );
                }
            }
            assert_frames_identical(&tag, &full, &sparse, &probes);
            assert!(
                full.totals().expired > 0,
                "{tag}: lazy expiry never reclaimed anything",
            );
        }
    }
}
