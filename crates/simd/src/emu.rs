//! Portable, always-available emulated SIMD backend.
//!
//! [`Emu<L, LANES>`] implements every [`Vector`] operation with plain scalar
//! loops over a `[L; LANES]` array. It serves three purposes:
//!
//! 1. **Ground truth** — every intrinsic backend in [`crate::x86`] is
//!    property-tested lane-for-lane against `Emu`.
//! 2. **Portability** — on a CPU without the required ISA extensions the
//!    benchmark's validation engine still runs all algorithms functionally.
//! 3. **Autovectorization baseline** — the compiler typically vectorizes
//!    these loops, giving an interesting "what the compiler does on its own"
//!    contrast to hand-written intrinsics.

use crate::lane::Lane;
use crate::vector::Vector;

/// A portable SIMD vector of `LANES` elements of type `L`.
///
/// See the [module documentation](self) for the role this type plays.
///
/// # Examples
///
/// ```
/// use simdht_simd::{Vector, emu::Emu};
///
/// let v = Emu::<u32, 4>::splat(3).add(Emu::from_slice(&[0, 1, 2, 3]));
/// assert_eq!(v.to_lanes()[..4], [3, 4, 5, 6]);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Emu<L, const LANES: usize>(pub(crate) [L; LANES]);

impl<L: Lane, const LANES: usize> Emu<L, LANES> {
    /// Construct from an array of lanes.
    pub fn from_array(xs: [L; LANES]) -> Self {
        Emu(xs)
    }

    /// View the lanes as an array.
    pub fn as_array(&self) -> &[L; LANES] {
        &self.0
    }

    #[inline(always)]
    fn zip_map(self, other: Self, f: impl Fn(L, L) -> L) -> Self {
        let mut out = [L::EMPTY; LANES];
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = f(self.0[i], other.0[i]);
        }
        Emu(out)
    }
}

impl<L: Lane, const LANES: usize> Default for Emu<L, LANES> {
    fn default() -> Self {
        Emu([L::EMPTY; LANES])
    }
}

impl<L: Lane, const LANES: usize> Vector for Emu<L, LANES> {
    type Lane = L;
    const LANES: usize = LANES;
    const WIDTH_BITS: usize = LANES * L::BITS as usize;

    #[inline(always)]
    fn splat(x: L) -> Self {
        Emu([x; LANES])
    }

    #[inline(always)]
    fn from_slice(xs: &[L]) -> Self {
        let mut out = [L::EMPTY; LANES];
        out.copy_from_slice(&xs[..LANES]);
        Emu(out)
    }

    #[inline(always)]
    fn from_two_slices(lo: &[L], hi: &[L]) -> Self {
        let half = LANES / 2;
        let mut out = [L::EMPTY; LANES];
        out[..half].copy_from_slice(&lo[..half]);
        out[half..].copy_from_slice(&hi[..half]);
        Emu(out)
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[L]) -> (Self, Self) {
        assert!(xs.len() >= 2 * LANES);
        let mut evens = [L::EMPTY; LANES];
        let mut odds = [L::EMPTY; LANES];
        for i in 0..LANES {
            evens[i] = xs[2 * i];
            odds[i] = xs[2 * i + 1];
        }
        (Emu(evens), Emu(odds))
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [L]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        self.zip_map(other, L::wrapping_add)
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self.zip_map(other, L::bitand)
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        self.zip_map(other, L::bitor)
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        self.zip_map(other, L::bitxor)
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        self.zip_map(other, L::wrapping_mul)
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        let mut out = self.0;
        for lane in &mut out {
            *lane = lane.shr(n);
        }
        Emu(out)
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        let mut out = self.0;
        for lane in &mut out {
            *lane = lane.shl(n);
        }
        Emu(out)
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        let mut bits = 0u64;
        for i in 0..LANES {
            bits |= u64::from(self.0[i] == other.0[i]) << i;
        }
        bits
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        let mut out = [L::EMPTY; LANES];
        for (i, lane) in out.iter_mut().enumerate() {
            *lane = if bits & (1 << i) != 0 {
                if_set.0[i]
            } else {
                if_clear.0[i]
            };
        }
        Emu(out)
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[L], idx: Self) -> Self {
        let mut out = [L::EMPTY; LANES];
        for (i, lane) in out.iter_mut().enumerate() {
            let j = idx.0[i].to_u64() as usize;
            debug_assert!(j < base.len(), "gather_idx lane {i} out of bounds: {j}");
            *lane = *base.get_unchecked(j);
        }
        Emu(out)
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[L], idx: Self, bits: u64, fallback: Self) -> Self {
        let mut out = fallback.0;
        for (i, lane) in out.iter_mut().enumerate() {
            if bits & (1 << i) != 0 {
                let j = idx.0[i].to_u64() as usize;
                debug_assert!(j < base.len(), "masked gather lane {i} out of bounds: {j}");
                *lane = *base.get_unchecked(j);
            }
        }
        Emu(out)
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[L], idx: Self) -> (Self, Self) {
        let mut keys = [L::EMPTY; LANES];
        let mut vals = [L::EMPTY; LANES];
        for i in 0..LANES {
            let p = idx.0[i].to_u64() as usize;
            debug_assert!(
                2 * p + 1 < base.len(),
                "gather_pairs lane {i} out of bounds: {p}"
            );
            keys[i] = *base.get_unchecked(2 * p);
            vals[i] = *base.get_unchecked(2 * p + 1);
        }
        (Emu(keys), Emu(vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V8 = Emu<u32, 8>;

    #[test]
    fn splat_and_extract() {
        let v = V8::splat(42);
        for i in 0..8 {
            assert_eq!(v.extract(i), 42);
        }
    }

    #[test]
    fn from_slice_roundtrip() {
        let xs = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let v = V8::from_slice(&xs);
        let mut out = [0u32; 8];
        v.write_to_slice(&mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn from_two_slices_halves() {
        let v = V8::from_two_slices(&[1, 2, 3, 4], &[5, 6, 7, 8]);
        assert_eq!(v.to_lanes()[..8], [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn deinterleave() {
        let xs: Vec<u32> = (0..16).collect();
        let (evens, odds) = V8::load_deinterleave_2(&xs);
        assert_eq!(evens.to_lanes()[..8], [0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(odds.to_lanes()[..8], [1, 3, 5, 7, 9, 11, 13, 15]);
    }

    #[test]
    fn arithmetic_wraps() {
        let v = V8::splat(u32::MAX).add(V8::splat(2));
        assert_eq!(v.extract(0), 1);
        let m = V8::splat(0x8000_0001).mullo(V8::splat(2));
        assert_eq!(m.extract(0), 2);
    }

    #[test]
    fn cmpeq_bitmask() {
        let a = V8::from_slice(&[9, 0, 9, 0, 9, 0, 0, 9]);
        let bits = a.cmpeq_bits(V8::splat(9));
        assert_eq!(bits, 0b1001_0101);
    }

    #[test]
    fn blend_selects_per_lane() {
        let a = V8::splat(1);
        let b = V8::splat(2);
        let v = V8::blend_bits(0b0000_1111, a, b);
        assert_eq!(v.to_lanes()[..8], [1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn gather_basic() {
        let base: Vec<u32> = (100..132).collect();
        let idx = V8::from_slice(&[0, 31, 1, 30, 2, 29, 3, 28]);
        let v = unsafe { V8::gather_idx(&base, idx) };
        assert_eq!(v.to_lanes()[..8], [100, 131, 101, 130, 102, 129, 103, 128]);
    }

    #[test]
    fn gather_masked_leaves_fallback() {
        let base: Vec<u32> = (0..8).map(|i| i * 10).collect();
        let idx = V8::from_slice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let v = unsafe { V8::gather_idx_masked(&base, idx, 0b0101_0101, V8::splat(999)) };
        assert_eq!(v.to_lanes()[..8], [0, 999, 20, 999, 40, 999, 60, 999]);
    }

    #[test]
    fn gather_masked_ignores_oob_in_unselected_lanes() {
        let base: Vec<u32> = vec![5, 6];
        // Lane 1 has an out-of-bounds index but its mask bit is clear.
        let idx = V8::from_slice(&[1, 1_000_000, 0, 1_000_000, 1, 1_000_000, 0, 1_000_000]);
        let v = unsafe { V8::gather_idx_masked(&base, idx, 0b0101_0101, V8::splat(0)) };
        assert_eq!(v.to_lanes()[..8], [6, 0, 5, 0, 6, 0, 5, 0]);
    }

    #[test]
    fn gather_pairs_splits_kv() {
        // pairs: (10,11) (20,21) (30,31) (40,41) ...
        let base: Vec<u32> = (1..=8).flat_map(|i| [i * 10, i * 10 + 1]).collect();
        let idx = V8::from_slice(&[7, 6, 5, 4, 3, 2, 1, 0]);
        let (k, v) = unsafe { V8::gather_pairs(&base, idx) };
        assert_eq!(k.to_lanes()[..8], [80, 70, 60, 50, 40, 30, 20, 10]);
        assert_eq!(v.to_lanes()[..8], [81, 71, 61, 51, 41, 31, 21, 11]);
    }

    #[test]
    fn width_bits() {
        assert_eq!(<Emu<u32, 8> as Vector>::WIDTH_BITS, 256);
        assert_eq!(<Emu<u64, 8> as Vector>::WIDTH_BITS, 512);
        assert_eq!(<Emu<u16, 8> as Vector>::WIDTH_BITS, 128);
    }

    #[test]
    fn lane_mask_counts() {
        assert_eq!(<Emu<u32, 8> as Vector>::lane_mask(), 0xFF);
        assert_eq!(<Emu<u16, 32> as Vector>::lane_mask(), 0xFFFF_FFFF);
    }
}
