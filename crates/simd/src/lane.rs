//! Scalar lane types that SIMD vectors are composed of.
//!
//! SimdHT-Bench stores fixed-width *hash keys* and *payloads* in its hash
//! tables (the paper evaluates 16-, 32- and 64-bit keys/payloads). The
//! [`Lane`] trait abstracts over those widths so every lookup kernel can be
//! written once and monomorphized per width.

use std::fmt::Debug;
use std::hash::Hash;

/// An unsigned integer type usable as a SIMD lane (and as a hash-table key or
/// payload word).
///
/// Implemented for [`u16`], [`u32`] and [`u64`] — the three hash-key widths
/// the paper characterizes (Case Study ② contrasts 16- and 64-bit keys with
/// the 32-bit baseline).
///
/// # Examples
///
/// ```
/// use simdht_simd::Lane;
///
/// fn low_bits<L: Lane>(x: L, n: u32) -> L {
///     x.bitand(L::mask_low(n))
/// }
/// assert_eq!(low_bits(0xABCDu16, 8), 0xCD);
/// ```
pub trait Lane:
    Copy + Clone + Debug + Default + Eq + PartialEq + Ord + PartialOrd + Hash + Send + Sync + 'static
{
    /// Width of the lane in bits (16, 32 or 64).
    const BITS: u32;

    /// The empty-slot sentinel (`0`). Hash tables reserve this value to mark
    /// unoccupied slots, which is what makes single-instruction vector probes
    /// possible (DPDK and MemC3 use the same convention).
    const EMPTY: Self;

    /// The all-ones value (`!0`).
    const MAX: Self;

    /// Truncating conversion from `u64`.
    fn from_u64(x: u64) -> Self;

    /// Widening conversion to `u64`.
    fn to_u64(self) -> u64;

    /// Lane-width wrapping multiplication (the core of multiply-shift
    /// hashing).
    fn wrapping_mul(self, other: Self) -> Self;

    /// Lane-width wrapping addition.
    fn wrapping_add(self, other: Self) -> Self;

    /// Logical right shift. `n` must be `< Self::BITS`.
    fn shr(self, n: u32) -> Self;

    /// Logical left shift. `n` must be `< Self::BITS`.
    fn shl(self, n: u32) -> Self;

    /// Bitwise AND.
    fn bitand(self, other: Self) -> Self;

    /// Bitwise OR.
    fn bitor(self, other: Self) -> Self;

    /// Bitwise XOR.
    fn bitxor(self, other: Self) -> Self;

    /// A mask with the low `n` bits set. `n == BITS` yields [`Lane::MAX`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n > Self::BITS`.
    fn mask_low(n: u32) -> Self {
        debug_assert!(n <= Self::BITS);
        if n >= Self::BITS {
            Self::MAX
        } else {
            Self::from_u64((1u64 << n).wrapping_sub(1))
        }
    }
}

macro_rules! impl_lane {
    ($ty:ty, $bits:expr) => {
        impl Lane for $ty {
            const BITS: u32 = $bits;
            const EMPTY: Self = 0;
            const MAX: Self = <$ty>::MAX;

            #[inline(always)]
            fn from_u64(x: u64) -> Self {
                x as $ty
            }

            #[inline(always)]
            fn to_u64(self) -> u64 {
                self as u64
            }

            #[inline(always)]
            fn wrapping_mul(self, other: Self) -> Self {
                <$ty>::wrapping_mul(self, other)
            }

            #[inline(always)]
            fn wrapping_add(self, other: Self) -> Self {
                <$ty>::wrapping_add(self, other)
            }

            #[inline(always)]
            fn shr(self, n: u32) -> Self {
                debug_assert!(n < Self::BITS);
                self >> n
            }

            #[inline(always)]
            fn shl(self, n: u32) -> Self {
                debug_assert!(n < Self::BITS);
                self << n
            }

            #[inline(always)]
            fn bitand(self, other: Self) -> Self {
                self & other
            }

            #[inline(always)]
            fn bitor(self, other: Self) -> Self {
                self | other
            }

            #[inline(always)]
            fn bitxor(self, other: Self) -> Self {
                self ^ other
            }
        }
    };
}

impl_lane!(u16, 16);
impl_lane!(u32, 32);
impl_lane!(u64, 64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_bits() {
        assert_eq!(<u16 as Lane>::BITS, 16);
        assert_eq!(<u32 as Lane>::BITS, 32);
        assert_eq!(<u64 as Lane>::BITS, 64);
    }

    #[test]
    fn from_u64_truncates() {
        assert_eq!(<u16 as Lane>::from_u64(0x1_2345), 0x2345);
        assert_eq!(<u32 as Lane>::from_u64(0x1_0000_0001), 1);
        assert_eq!(<u64 as Lane>::from_u64(u64::MAX), u64::MAX);
    }

    #[test]
    fn mask_low_edges() {
        assert_eq!(<u32 as Lane>::mask_low(0), 0);
        assert_eq!(<u32 as Lane>::mask_low(5), 0b11111);
        assert_eq!(<u32 as Lane>::mask_low(32), u32::MAX);
        assert_eq!(<u64 as Lane>::mask_low(64), u64::MAX);
        assert_eq!(<u16 as Lane>::mask_low(16), u16::MAX);
    }

    #[test]
    fn wrapping_ops() {
        assert_eq!(<u16 as Lane>::wrapping_mul(0x8000, 2), 0);
        assert_eq!(<u32 as Lane>::wrapping_add(u32::MAX, 1), 0);
    }

    #[test]
    fn shifts() {
        assert_eq!(<u32 as Lane>::shr(0xF0, 4), 0xF);
        assert_eq!(<u32 as Lane>::shl(0xF, 4), 0xF0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(<u16 as Lane>::EMPTY, 0);
        assert_eq!(<u32 as Lane>::EMPTY, 0);
        assert_eq!(<u64 as Lane>::EMPTY, 0);
    }
}
