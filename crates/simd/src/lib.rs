//! # simdht-simd
//!
//! The SIMD abstraction layer of **SimdHT-Bench**, a reproduction of
//! *"SimdHT-Bench: Characterizing SIMD-Aware Hash Table Designs on Emerging
//! CPU Architectures"* (IISWC 2019).
//!
//! The paper's generic vector-operation templates `vec_<op>_{x,W}` (§IV-C)
//! are realized as the [`Vector`] trait, with one implementation per
//! *(vector width × lane width × backend)*:
//!
//! * [`emu::Emu<L, LANES>`] — a portable scalar-loop backend, always
//!   available, used as ground truth in tests.
//! * [`x86`] (`v128` / `v256` / `v512`) — hand-written SSE-class /
//!   AVX2 / AVX-512 intrinsic backends for `u16`/`u32`/`u64` lanes,
//!   compiled in when the build targets a capable CPU.
//!
//! Lookup kernels in `simdht-core` are written once against [`Vector`] and
//! monomorphized per backend; [`CpuFeatures`] reports which intrinsic widths
//! the running CPU (and the current build) actually supports, which is what
//! the paper's *SIMD algorithm validation engine* consumes.
//!
//! ## Example
//!
//! ```
//! use simdht_simd::{CpuFeatures, Vector, Width, emu::Emu};
//!
//! // Probe 8 candidate slots for key 7 in one "instruction".
//! type V = Emu<u32, 8>;
//! let slots = V::from_slice(&[3, 9, 7, 1, 0, 0, 7, 2]);
//! let hits = slots.cmpeq_bits(V::splat(7));
//! assert_eq!(simdht_simd::first_lane(hits), Some(2));
//!
//! // What can this machine run natively?
//! let caps = CpuFeatures::detect();
//! println!("native widths: {:?}", caps.native_widths());
//! assert!(caps.supports(Width::W128) || !caps.has_avx2);
//! ```

#![warn(missing_docs)]

pub mod emu;
mod lane;
pub mod scan;
mod vector;
pub mod x86;

pub use lane::Lane;
pub use vector::{first_lane, prefetch_read, set_lanes, Vector, MAX_LANES};

/// A CPU vector register width — the paper's "SIMD parallelism" axis
/// (SSE = 128, AVX2 = 256, AVX-512 = 512 bits).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 128-bit vectors (SSE class).
    W128,
    /// 256-bit vectors (AVX2).
    W256,
    /// 512-bit vectors (AVX-512).
    W512,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 3] = [Width::W128, Width::W256, Width::W512];

    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W128 => 128,
            Width::W256 => 256,
            Width::W512 => 512,
        }
    }

    /// The conventional ISA name for this width.
    pub fn isa_name(self) -> &'static str {
        match self {
            Width::W128 => "SSE",
            Width::W256 => "AVX2",
            Width::W512 => "AVX-512",
        }
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} bit ({})", self.bits(), self.isa_name())
    }
}

/// Which implementation of the vector templates to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Hand-written x86-64 intrinsics (requires [`CpuFeatures::supports`]).
    #[default]
    Native,
    /// The portable emulated backend — runs anywhere.
    Emulated,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Native => write!(f, "native"),
            Backend::Emulated => write!(f, "emulated"),
        }
    }
}

/// Runtime + compile-time CPU capability report.
///
/// A width is usable natively only if the *running* CPU supports it **and**
/// this binary was compiled with the backend enabled (the workspace builds
/// with `-C target-cpu=native`, so on the build host both always agree).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CpuFeatures {
    /// CPU executes AVX2 (also gates the 128-bit backend, which uses VEX
    /// encodings and AVX2 gathers).
    pub has_avx2: bool,
    /// CPU executes AVX-512 F/BW/DQ/VL.
    pub has_avx512: bool,
    /// This binary contains the 128/256-bit intrinsic backends.
    pub compiled_avx2: bool,
    /// This binary contains the 512-bit intrinsic backend.
    pub compiled_avx512: bool,
}

impl CpuFeatures {
    /// Detect what the running CPU and this build support.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                has_avx2: std::arch::is_x86_feature_detected!("avx2"),
                has_avx512: std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512dq")
                    && std::arch::is_x86_feature_detected!("avx512vl"),
                compiled_avx2: cfg!(target_feature = "avx2"),
                compiled_avx512: cfg!(all(
                    target_feature = "avx512f",
                    target_feature = "avx512bw",
                    target_feature = "avx512dq",
                    target_feature = "avx512vl"
                )),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures {
                has_avx2: false,
                has_avx512: false,
                compiled_avx2: false,
                compiled_avx512: false,
            }
        }
    }

    /// Can the given width run on the native intrinsic backend?
    pub fn supports(&self, width: Width) -> bool {
        match width {
            Width::W128 | Width::W256 => self.has_avx2 && self.compiled_avx2,
            Width::W512 => self.has_avx512 && self.compiled_avx512,
        }
    }

    /// Widths runnable on the native backend, narrowest first.
    pub fn native_widths(&self) -> Vec<Width> {
        Width::ALL
            .into_iter()
            .filter(|w| self.supports(*w))
            .collect()
    }

    /// A capability set with no native support (emulated backend only) —
    /// useful for forcing portable runs in tests.
    pub fn none() -> Self {
        CpuFeatures {
            has_avx2: false,
            has_avx512: false,
            compiled_avx2: false,
            compiled_avx512: false,
        }
    }
}

impl std::fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "avx2: {} (compiled: {}), avx512(f+bw+dq+vl): {} (compiled: {})",
            self.has_avx2, self.compiled_avx2, self.has_avx512, self.compiled_avx512
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bits_and_names() {
        assert_eq!(Width::W128.bits(), 128);
        assert_eq!(Width::W256.isa_name(), "AVX2");
        assert_eq!(Width::W512.to_string(), "512 bit (AVX-512)");
    }

    #[test]
    fn widths_ordered() {
        assert!(Width::W128 < Width::W256 && Width::W256 < Width::W512);
    }

    #[test]
    fn detect_is_consistent() {
        let caps = CpuFeatures::detect();
        // If we support 512 natively we must also support 256 on any real
        // x86-64 CPU + build produced by this workspace.
        if caps.supports(Width::W512) {
            assert!(caps.supports(Width::W256));
        }
        let widths = caps.native_widths();
        for w in &widths {
            assert!(caps.supports(*w));
        }
    }

    #[test]
    fn none_supports_nothing() {
        let caps = CpuFeatures::none();
        assert!(Width::ALL.iter().all(|w| !caps.supports(*w)));
        assert!(caps.native_widths().is_empty());
    }
}
