//! Small fixed-width **row scans**: byte-granular tag matching and
//! empty-slot (occupancy) movemasks over one bucket row.
//!
//! Hash-table buckets in this workspace keep their per-slot metadata packed
//! into one machine word (a *tag row*: 8 little-endian bytes, one per slot)
//! or into a short run of 32-bit lanes (the `CuckooTable` key row). Probing
//! such a row is a single SSE compare + movemask; the same scan also answers
//! "where is the first empty slot?" on the insert path, replacing the scalar
//! slot walk every index used to run (ROADMAP item 3's remainder).
//!
//! All functions return a **slot bitmask** (bit `s` = slot `s`) so callers
//! can take `trailing_zeros()` for a first-match walk that is bit-identical
//! to the scalar left-to-right scan they replace. Each has an SSE2 path and
//! a portable fallback with identical semantics; the fallbacks double as the
//! test oracle.

/// Byte-equality movemask over one packed 8-byte row: bit `i` is set iff
/// little-endian byte `i` of `word` equals `needle`.
///
/// SSE2 path: move the word into the low half of an XMM register,
/// `pcmpeqb` against the splatted needle, `pmovmskb` (register byte `i`
/// maps to mask bit `i`). Portable path: a byte loop over the word.
#[inline(always)]
#[must_use]
pub fn eq_mask8(word: u64, needle: u8) -> u32 {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    // SAFETY: sse2 is guaranteed by the cfg gate; register-only ops.
    unsafe {
        use core::arch::x86_64::*;
        let v = _mm_cvtsi64_si128(word as i64);
        let eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(needle as i8));
        (_mm_movemask_epi8(eq) as u32) & 0xFF
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        let mut m = 0u32;
        for (i, &b) in word.to_le_bytes().iter().enumerate() {
            m |= u32::from(b == needle) << i;
        }
        m
    }
}

/// Occupancy scan over a packed 8-byte tag row: bit `i` is set iff byte `i`
/// is `0` (the empty-slot sentinel). `zero_mask8(w).trailing_zeros()` is the
/// first empty slot, exactly as the scalar left-to-right walk finds it.
#[inline(always)]
#[must_use]
pub fn zero_mask8(word: u64) -> u32 {
    eq_mask8(word, 0)
}

/// Lane-equality movemask over up to 32 contiguous `u32` lanes: bit `i` is
/// set iff `lanes[i] == needle`. Whole 4-lane groups go through one SSE2
/// `pcmpeqd` + `movmskps`; the sub-group tail (and the non-x86 build) runs
/// the identical scalar compare.
///
/// # Panics
///
/// Debug-asserts `lanes.len() <= 32` (the mask is a `u32`).
#[inline]
#[must_use]
pub fn eq_lane_mask_u32(lanes: &[u32], needle: u32) -> u32 {
    debug_assert!(lanes.len() <= 32, "mask is 32 bits");
    let mut mask = 0u32;
    let mut i = 0usize;
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    // SAFETY: sse2 is guaranteed by the cfg gate; the unaligned load reads
    // `lanes[i..i + 4]`, in bounds by the loop condition.
    unsafe {
        use core::arch::x86_64::*;
        let splat = _mm_set1_epi32(needle as i32);
        while i + 4 <= lanes.len() {
            let v = _mm_loadu_si128(lanes.as_ptr().add(i).cast());
            let eq = _mm_cmpeq_epi32(v, splat);
            mask |= (_mm_movemask_ps(_mm_castsi128_ps(eq)) as u32) << i;
            i += 4;
        }
    }
    for (j, &l) in lanes[i..].iter().enumerate() {
        mask |= u32::from(l == needle) << (i + j);
    }
    mask
}

/// Low-half-equality movemask over up to 8 packed 64-bit slot words: bit
/// `s` is set iff the low 32 bits of `words[s]` equal `needle`.
///
/// This is the occupancy scan for buckets whose slots pack
/// `[meta:32][item:32]` into one word each (the MemC3 index): probing the
/// low halves against the `NO_ITEM` sentinel finds the empty slots without
/// unpacking. SSE2 compares two slot words per `pcmpeqd`; the `movmskps`
/// lanes `{0, 2}` are the two low halves.
///
/// # Panics
///
/// Debug-asserts `words.len() <= 8`.
#[inline]
#[must_use]
pub fn eq_low32_mask(words: &[u64], needle: u32) -> u32 {
    debug_assert!(words.len() <= 8, "slot mask is 8 bits");
    let mut mask = 0u32;
    let mut i = 0usize;
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    // SAFETY: sse2 is guaranteed by the cfg gate; the unaligned load reads
    // `words[i..i + 2]`, in bounds by the loop condition.
    unsafe {
        use core::arch::x86_64::*;
        let splat = _mm_set1_epi32(needle as i32);
        while i + 2 <= words.len() {
            let v = _mm_loadu_si128(words.as_ptr().add(i).cast());
            let eq = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, splat))) as u32;
            // Vector lanes {0, 2} are the low halves of words i and i + 1.
            mask |= (eq & 1) << i;
            mask |= ((eq >> 2) & 1) << (i + 1);
            i += 2;
        }
    }
    for (j, &w) in words[i..].iter().enumerate() {
        mask |= u32::from(w as u32 == needle) << (i + j);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_mask8_scalar(word: u64, needle: u8) -> u32 {
        let mut m = 0u32;
        for (i, &b) in word.to_le_bytes().iter().enumerate() {
            m |= u32::from(b == needle) << i;
        }
        m
    }

    #[test]
    fn byte_mask_semantics() {
        let word = u64::from_le_bytes([9, 3, 9, 0, 9, 9, 1, 2]);
        assert_eq!(eq_mask8(word, 9), 0b0011_0101);
        assert_eq!(eq_mask8(word, 7), 0);
        assert_eq!(eq_mask8(word, 2), 0b1000_0000);
        assert_eq!(zero_mask8(word), 0b0000_1000);
        assert_eq!(zero_mask8(0), 0xFF);
        assert_eq!(zero_mask8(u64::MAX), 0);
    }

    #[test]
    fn byte_mask_matches_scalar_oracle() {
        let mut state = 0x5EED_0001u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let needle = (state >> 56) as u8;
            assert_eq!(eq_mask8(state, needle), eq_mask8_scalar(state, needle));
            assert_eq!(eq_mask8(state, 0), eq_mask8_scalar(state, 0));
        }
    }

    #[test]
    fn lane_mask_semantics() {
        assert_eq!(eq_lane_mask_u32(&[], 7), 0);
        assert_eq!(eq_lane_mask_u32(&[7], 7), 1);
        assert_eq!(eq_lane_mask_u32(&[1, 7, 7, 0, 7], 7), 0b10110);
        assert_eq!(eq_lane_mask_u32(&[0; 9], 0), 0x1FF);
        // Every alignment of the SSE2 groups + scalar tail.
        for len in 0..=32usize {
            let lanes: Vec<u32> = (0..len as u32).map(|i| i % 3).collect();
            let expect = lanes
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, &l)| m | (u32::from(l == 0) << i));
            assert_eq!(eq_lane_mask_u32(&lanes, 0), expect, "len {len}");
        }
    }

    #[test]
    fn low32_mask_semantics() {
        let no_item = u32::MAX;
        let packed = |hi: u32, lo: u32| (u64::from(hi) << 32) | u64::from(lo);
        let words = [
            packed(5, no_item),
            packed(9, 77),
            packed(0, no_item),
            packed(no_item, 3), // high half must NOT match
        ];
        assert_eq!(eq_low32_mask(&words, no_item), 0b0101);
        assert_eq!(eq_low32_mask(&words, 77), 0b0010);
        assert_eq!(eq_low32_mask(&words, 4), 0);
        assert_eq!(eq_low32_mask(&[], 1), 0);
        // Odd lengths exercise the scalar tail.
        for len in 0..=8usize {
            let words: Vec<u64> = (0..len as u64).map(|i| packed(1, (i % 2) as u32)).collect();
            let expect = words
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, &w)| m | (u32::from(w as u32 == 0) << i));
            assert_eq!(eq_low32_mask(&words, 0), expect, "len {len}");
        }
    }
}
