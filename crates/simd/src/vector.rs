//! The [`Vector`] trait — the generic SIMD operation set every lookup kernel
//! is written against.
//!
//! The paper (§IV-C) defines generic vector-operation templates
//! `vec_<operation>_{x,W}()` where `W` is the vector width in bits and `x`
//! the lane width; this trait is the Rust embodiment of those templates. Each
//! backend ([`crate::emu`] portable, [`crate::x86`] intrinsic) provides the
//! concrete `vec_*` implementations, and the kernels in `simdht-core` are
//! monomorphized once per backend.
//!
//! Match masks are uniformly represented as a `u64` bitmask with bit *i* set
//! when lane *i* matched (what `movemask` produces on SSE/AVX2 and what the
//! `__mmask` registers are on AVX-512).

use crate::lane::Lane;

/// Maximum number of lanes any supported vector can have (AVX-512 over
/// 16-bit lanes: 512 / 16 = 32).
pub const MAX_LANES: usize = 32;

/// A fixed-width SIMD vector over [`Lane`] elements.
///
/// # Examples
///
/// ```
/// use simdht_simd::{Vector, emu::Emu};
///
/// type V = Emu<u32, 8>; // portable stand-in for a 256-bit vector of u32
/// let haystack = V::from_slice(&[7, 1, 7, 3, 9, 7, 2, 8]);
/// let needle = V::splat(7);
/// let mask = haystack.cmpeq_bits(needle);
/// assert_eq!(mask, 0b0010_0101);
/// ```
pub trait Vector: Copy + Send + Sync + 'static {
    /// The scalar element type.
    type Lane: Lane;

    /// Number of lanes in the vector.
    const LANES: usize;

    /// Total vector width in bits (`LANES * Lane::BITS`).
    const WIDTH_BITS: usize;

    /// Broadcast a scalar to every lane (the paper's `vec_set_lanes`).
    fn splat(x: Self::Lane) -> Self;

    /// Load `LANES` consecutive elements from `xs` (the paper's
    /// `vec_load_lanes` / `vec_load_buckets` for a single bucket).
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() < Self::LANES`.
    fn from_slice(xs: &[Self::Lane]) -> Self;

    /// Load the low `LANES / 2` lanes from `lo` and the high `LANES / 2`
    /// lanes from `hi`.
    ///
    /// This is how the horizontal kernel loads *two* hash buckets (which live
    /// at unrelated addresses) into a single vector — the
    /// "buckets-per-vector = 2" configuration of Algorithm 1.
    ///
    /// # Panics
    ///
    /// Panics if either slice is shorter than `Self::LANES / 2`.
    fn from_two_slices(lo: &[Self::Lane], hi: &[Self::Lane]) -> Self;

    /// Load `2 * LANES` consecutive elements and de-interleave them into
    /// `(evens, odds)`.
    ///
    /// This implements the paper's `vec_shuffle_and_blend` (Algorithm 1,
    /// line 18): an *interleaved* bucket `[k0 v0 k1 v1 …]` is split into a
    /// key vector and a value vector.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() < 2 * Self::LANES`.
    fn load_deinterleave_2(xs: &[Self::Lane]) -> (Self, Self);

    /// Store all lanes to `out[..LANES]`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < Self::LANES`.
    fn write_to_slice(self, out: &mut [Self::Lane]);

    /// Extract a single lane.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lane >= Self::LANES`.
    #[inline]
    fn extract(self, lane: usize) -> Self::Lane {
        debug_assert!(lane < Self::LANES);
        let mut buf = [Self::Lane::EMPTY; MAX_LANES];
        self.write_to_slice(&mut buf[..Self::LANES]);
        buf[lane]
    }

    /// Return all lanes as an array-backed buffer (first `LANES` entries are
    /// meaningful).
    #[inline]
    fn to_lanes(self) -> [Self::Lane; MAX_LANES] {
        let mut buf = [Self::Lane::EMPTY; MAX_LANES];
        self.write_to_slice(&mut buf[..Self::LANES]);
        buf
    }

    /// Lane-wise wrapping addition.
    fn add(self, other: Self) -> Self;

    /// Lane-wise bitwise AND.
    fn and(self, other: Self) -> Self;

    /// Lane-wise bitwise OR.
    fn or(self, other: Self) -> Self;

    /// Lane-wise bitwise XOR.
    fn xor(self, other: Self) -> Self;

    /// Lane-wise wrapping multiply keeping the low `Lane::BITS` bits
    /// (`mullo`) — the workhorse of the in-vector multiply-shift hash
    /// (`vec_calc_hash`, Algorithm 2 line 16).
    fn mullo(self, other: Self) -> Self;

    /// Lane-wise logical right shift by a uniform amount.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n >= Lane::BITS`.
    fn shr(self, n: u32) -> Self;

    /// Lane-wise logical left shift by a uniform amount.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n >= Lane::BITS`.
    fn shl(self, n: u32) -> Self;

    /// Lane-wise equality compare, returned as a bitmask with bit *i* set
    /// when `self[i] == other[i]` (the paper's `vec_cmpeq` followed by a
    /// movemask).
    fn cmpeq_bits(self, other: Self) -> u64;

    /// Per-lane select: lane *i* of the result is `if_set[i]` when bit *i*
    /// of `bits` is set, else `if_clear[i]`.
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self;

    /// Gather `LANES` elements: lane *i* of the result is
    /// `base[idx[i] as usize]` (the paper's `vec_gather_key` /
    /// `vec_gather_val`).
    ///
    /// # Safety
    ///
    /// Every lane of `idx`, interpreted as `u64`, must be `< base.len()`.
    /// Debug builds assert this.
    unsafe fn gather_idx(base: &[Self::Lane], idx: Self) -> Self;

    /// Masked gather: lane *i* is `base[idx[i]]` when bit *i* of `bits` is
    /// set, else `fallback[i]`. Lanes whose bit is clear must **not** be
    /// dereferenced (this is the "selective gather" of Case Study ⑤).
    ///
    /// # Safety
    ///
    /// For every lane *i* with bit *i* of `bits` set, `idx[i] < base.len()`.
    /// Debug builds assert this.
    unsafe fn gather_idx_masked(base: &[Self::Lane], idx: Self, bits: u64, fallback: Self) -> Self;

    /// Gather `LANES` *(key, value)* pairs stored adjacently and return
    /// `(keys, values)`.
    ///
    /// Pair *p* occupies `base[2p]` (key) and `base[2p + 1]` (value); lane
    /// *i* of the result uses pair `idx[i]`. This is the paper's
    /// "fewer, wider gathers" optimization (§IV-C): for 32-bit keys and
    /// values a single 64-bit-lane gather fetches both, halving the number of
    /// cache-line accesses. For 64-bit lanes no 128-bit gather exists on any
    /// x86 CPU, so implementations fall back to two gathers — which is
    /// exactly the effect Observation ② describes.
    ///
    /// # Safety
    ///
    /// Every lane of `idx` must satisfy `2 * idx[i] + 1 < base.len()`.
    /// Debug builds assert this.
    unsafe fn gather_pairs(base: &[Self::Lane], idx: Self) -> (Self, Self);

    /// Bitmask covering all lanes of this vector (`LANES` low bits set).
    #[inline]
    fn lane_mask() -> u64 {
        if Self::LANES >= 64 {
            u64::MAX
        } else {
            (1u64 << Self::LANES) - 1
        }
    }
}

/// Issue a read prefetch (to all cache levels) for the line containing `p`.
///
/// A no-op on non-x86 targets. This is the software stand-in for the
/// "hardware-optimized 'gather' intrinsics that take some prefetching
/// hints" the paper's Observation ② asks for.
///
/// Call sites form the KVS Multi-Get prefetch pipeline (simdht-kvs
/// DESIGN.md §9): the scalar index probes issue it for candidate bucket
/// rows G keys ahead (`Memc3Index`/`TagSimdIndex::lookup_batch_prefetched`
/// via their `prefetch_buckets`), the SIMD tables sweep it over a batch's
/// candidate buckets (`CuckooTable::prefetch_candidates`), and the verify
/// phase stages it through `ItemTable::prefetch` (object-pointer rows) and
/// `SlabAllocator::prefetch` (item chunk headers). It is always a hint:
/// callers re-resolve through bounds-checked reads, so dropping every
/// prefetch changes performance, never results.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on invalid
    // addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// Iterate over the set bit positions of a match mask, lowest first.
///
/// # Examples
///
/// ```
/// use simdht_simd::set_lanes;
///
/// let lanes: Vec<usize> = set_lanes(0b1010_0001).collect();
/// assert_eq!(lanes, [0, 5, 7]);
/// ```
#[inline]
pub fn set_lanes(mut bits: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if bits == 0 {
            None
        } else {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(lane)
        }
    })
}

/// The first set lane of a match mask, if any.
///
/// # Examples
///
/// ```
/// assert_eq!(simdht_simd::first_lane(0b100), Some(2));
/// assert_eq!(simdht_simd::first_lane(0), None);
/// ```
#[inline]
pub fn first_lane(bits: u64) -> Option<usize> {
    if bits == 0 {
        None
    } else {
        Some(bits.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lanes_iterates_in_order() {
        let v: Vec<usize> = set_lanes(0b1000_0000_0000_0101).collect();
        assert_eq!(v, [0, 2, 15]);
    }

    #[test]
    fn set_lanes_empty() {
        assert_eq!(set_lanes(0).count(), 0);
    }

    #[test]
    fn prefetch_read_is_harmless() {
        let data = [1u32, 2, 3, 4];
        prefetch_read(&data[0]);
        prefetch_read(&data[3]);
        // Prefetch is a hint: even a dangling-but-aligned address must not
        // fault (the ISA guarantees this; the call compiles to PREFETCHT0).
        prefetch_read(0x1000 as *const u32);
    }

    #[test]
    fn first_lane_picks_lowest() {
        assert_eq!(first_lane(0b110), Some(1));
        assert_eq!(first_lane(u64::MAX), Some(0));
    }
}
