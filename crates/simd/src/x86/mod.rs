//! x86-64 intrinsic SIMD backends.
//!
//! Three vector widths are provided, mirroring the paper's "SIMD parallelism"
//! dimension (§III-B.2):
//!
//! * `v128` — 128-bit "SSE-class" vectors (`U16x8`, `U32x4`, `U64x2`).
//!   Compiled with VEX encodings and AVX2 gathers, exactly as the paper's
//!   SSE experiments were on AVX-capable Skylake hardware.
//! * `v256` — 256-bit AVX2 vectors (`U16x16`, `U32x8`, `U64x4`).
//! * `v512` — 512-bit AVX-512 vectors (`U16x32`, `U32x16`, `U64x8`),
//!   requiring `avx512f + avx512bw + avx512dq + avx512vl`.
//!
//! Each module is compiled only when the build enables the corresponding
//! target features (the workspace builds with `-C target-cpu=native`); on
//! other machines the portable [`crate::emu`] backend remains available and
//! the validation engine reports the intrinsic widths as unavailable.
//!
//! Every backend is property-tested lane-for-lane against [`crate::emu::Emu`]
//! in this crate's test suite.

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub mod v128;
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
pub mod v256;
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx512f",
    target_feature = "avx512bw",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
pub mod v512;

/// Compress the even-indexed bits of `m` into consecutive low bits.
///
/// `_mm*_movemask_epi8` over a 16-bit-lane compare yields two identical bits
/// per lane; this keeps one bit per lane.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
#[inline(always)]
pub(crate) fn even_bits_u32(m: u32) -> u64 {
    #[cfg(target_feature = "bmi2")]
    // SAFETY: guarded by the `bmi2` target feature.
    unsafe {
        u64::from(core::arch::x86_64::_pext_u32(m, 0x5555_5555))
    }
    #[cfg(not(target_feature = "bmi2"))]
    {
        let mut out = 0u64;
        let mut i = 0;
        while i < 16 {
            out |= u64::from((m >> (2 * i)) & 1) << i;
            i += 1;
        }
        out
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx2", test))]
mod tests {
    use super::even_bits_u32;

    #[test]
    fn even_bits_compresses() {
        // lanes: pairs of bits 11 00 11 00 ... -> 1 0 1 0 ...
        assert_eq!(even_bits_u32(0b11_00_11), 0b101);
        assert_eq!(even_bits_u32(u32::MAX), 0xFFFF);
        assert_eq!(even_bits_u32(0), 0);
        // only odd bits set -> nothing survives
        assert_eq!(even_bits_u32(0xAAAA_AAAA), 0);
    }
}
