//! 128-bit ("SSE-class") vectors: [`U32x4`], [`U64x2`], [`U16x8`].
//!
//! These correspond to the paper's `W = 128` configurations (the "SSE"
//! column of Table I). They are compiled with VEX encodings and, where a
//! gather is needed, the 128-bit AVX2 gather forms — x86 has no SSE-encoded
//! gathers, so on period hardware 128-bit vertical probes paid scalar
//! gather cost just like [`U16x8`] does here.

use core::arch::x86_64::*;

use crate::lane::Lane;
use crate::vector::Vector;

/// 4 × u32 in a 128-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U32x4(__m128i);

/// 2 × u64 in a 128-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U64x2(__m128i);

/// 8 × u16 in a 128-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U16x8(__m128i);

/// Expand a per-lane bitmask into a full-lane 32-bit vector mask.
#[inline(always)]
fn mask32x4(bits: u64) -> __m128i {
    // SAFETY: sse2/sse4.1 are implied by the module's avx2 gate.
    unsafe {
        let tbl = _mm_setr_epi32(1, 2, 4, 8);
        let b = _mm_set1_epi32(bits as i32);
        _mm_cmpeq_epi32(_mm_and_si128(b, tbl), tbl)
    }
}

#[inline(always)]
fn mask64x2(bits: u64) -> __m128i {
    // SAFETY: as above.
    unsafe {
        let tbl = _mm_set_epi64x(2, 1);
        let b = _mm_set1_epi64x(bits as i64);
        _mm_cmpeq_epi64(_mm_and_si128(b, tbl), tbl)
    }
}

#[inline(always)]
fn mask16x8(bits: u64) -> __m128i {
    // SAFETY: as above.
    unsafe {
        let tbl = _mm_setr_epi16(1, 2, 4, 8, 16, 32, 64, 128);
        let b = _mm_set1_epi16(bits as i16);
        _mm_cmpeq_epi16(_mm_and_si128(b, tbl), tbl)
    }
}

/// 64-bit lane-wise `mullo` for 128-bit vectors without AVX-512DQ:
/// composed from three 32×32→64 multiplies.
#[inline(always)]
pub(crate) fn mullo64_128(a: __m128i, b: __m128i) -> __m128i {
    // SAFETY: sse2/sse4.1 implied by the avx2 gate.
    unsafe {
        let ahi = _mm_srli_epi64::<32>(a);
        let bhi = _mm_srli_epi64::<32>(b);
        let ll = _mm_mul_epu32(a, b);
        let hl = _mm_mul_epu32(ahi, b);
        let lh = _mm_mul_epu32(a, bhi);
        let hi = _mm_slli_epi64::<32>(_mm_add_epi64(hl, lh));
        _mm_add_epi64(ll, hi)
    }
}

#[inline(always)]
fn debug_check_bounds<L: Lane, V: Vector<Lane = L>>(base: &[L], idx: V, bits: u64) {
    if cfg!(debug_assertions) {
        let lanes = idx.to_lanes();
        for (i, lane) in lanes.iter().enumerate().take(V::LANES) {
            if bits & (1 << i) != 0 {
                assert!(
                    (lane.to_u64() as usize) < base.len(),
                    "gather lane {i} out of bounds: {}",
                    lane.to_u64()
                );
            }
        }
    }
}

impl Vector for U32x4 {
    type Lane = u32;
    const LANES: usize = 4;
    const WIDTH_BITS: usize = 128;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: sse2 implied by the avx2 gate (all subsequent intrinsic
        // uses in this module are guarded the same way).
        U32x4(unsafe { _mm_set1_epi32(x as i32) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u32]) -> Self {
        assert!(xs.len() >= 4);
        U32x4(unsafe { _mm_loadu_si128(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u32], hi: &[u32]) -> Self {
        assert!(lo.len() >= 2 && hi.len() >= 2);
        unsafe {
            let l = _mm_loadl_epi64(lo.as_ptr().cast());
            let h = _mm_loadl_epi64(hi.as_ptr().cast());
            U32x4(_mm_unpacklo_epi64(l, h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u32]) -> (Self, Self) {
        assert!(xs.len() >= 8);
        unsafe {
            let a = _mm_loadu_si128(xs.as_ptr().cast());
            let b = _mm_loadu_si128(xs.as_ptr().add(4).cast());
            let af = _mm_castsi128_ps(a);
            let bf = _mm_castsi128_ps(b);
            let evens = _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(af, bf));
            let odds = _mm_castps_si128(_mm_shuffle_ps::<0b11_01_11_01>(af, bf));
            (U32x4(evens), U32x4(odds))
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u32]) {
        assert!(out.len() >= 4);
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U32x4(unsafe { _mm_add_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U32x4(unsafe { _mm_and_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U32x4(unsafe { _mm_or_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U32x4(unsafe { _mm_xor_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U32x4(unsafe { _mm_mullo_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x4(unsafe { _mm_srl_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x4(unsafe { _mm_sll_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm_cmpeq_epi32(self.0, other.0);
            _mm_movemask_ps(_mm_castsi128_ps(eq)) as u64
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U32x4(unsafe { _mm_blendv_epi8(if_clear.0, if_set.0, mask32x4(bits)) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u32], idx: Self) -> Self {
        debug_check_bounds(base, idx, u64::MAX);
        U32x4(_mm_i32gather_epi32::<4>(base.as_ptr().cast(), idx.0))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u32], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_check_bounds(base, idx, bits);
        U32x4(_mm_mask_i32gather_epi32::<4>(
            fallback.0,
            base.as_ptr().cast(),
            idx.0,
            mask32x4(bits),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u32], idx: Self) -> (Self, Self) {
        if cfg!(debug_assertions) {
            for i in 0..4 {
                let p = idx.extract(i) as usize;
                assert!(2 * p + 1 < base.len(), "gather_pairs lane {i} oob: {p}");
            }
        }
        // Each 64-bit gather lane fetches one (key, value) pair.
        let pairs_lo = _mm_i32gather_epi64::<8>(base.as_ptr().cast(), idx.0);
        let idx_hi = _mm_shuffle_epi32::<0b00_00_11_10>(idx.0);
        let pairs_hi = _mm_i32gather_epi64::<8>(base.as_ptr().cast(), idx_hi);
        let af = _mm_castsi128_ps(pairs_lo);
        let bf = _mm_castsi128_ps(pairs_hi);
        let keys = _mm_castps_si128(_mm_shuffle_ps::<0b10_00_10_00>(af, bf));
        let vals = _mm_castps_si128(_mm_shuffle_ps::<0b11_01_11_01>(af, bf));
        (U32x4(keys), U32x4(vals))
    }
}

impl Vector for U64x2 {
    type Lane = u64;
    const LANES: usize = 2;
    const WIDTH_BITS: usize = 128;

    #[inline(always)]
    fn splat(x: u64) -> Self {
        U64x2(unsafe { _mm_set1_epi64x(x as i64) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u64]) -> Self {
        assert!(xs.len() >= 2);
        U64x2(unsafe { _mm_loadu_si128(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u64], hi: &[u64]) -> Self {
        assert!(!lo.is_empty() && !hi.is_empty());
        U64x2(unsafe { _mm_set_epi64x(hi[0] as i64, lo[0] as i64) })
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u64]) -> (Self, Self) {
        assert!(xs.len() >= 4);
        unsafe {
            let a = _mm_loadu_si128(xs.as_ptr().cast());
            let b = _mm_loadu_si128(xs.as_ptr().add(2).cast());
            (
                U64x2(_mm_unpacklo_epi64(a, b)),
                U64x2(_mm_unpackhi_epi64(a, b)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u64]) {
        assert!(out.len() >= 2);
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U64x2(unsafe { _mm_add_epi64(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U64x2(unsafe { _mm_and_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U64x2(unsafe { _mm_or_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U64x2(unsafe { _mm_xor_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U64x2(mullo64_128(self.0, other.0))
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x2(unsafe { _mm_srl_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x2(unsafe { _mm_sll_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm_cmpeq_epi64(self.0, other.0);
            _mm_movemask_pd(_mm_castsi128_pd(eq)) as u64
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U64x2(unsafe { _mm_blendv_epi8(if_clear.0, if_set.0, mask64x2(bits)) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u64], idx: Self) -> Self {
        debug_check_bounds(base, idx, u64::MAX);
        U64x2(_mm_i64gather_epi64::<8>(base.as_ptr().cast(), idx.0))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u64], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_check_bounds(base, idx, bits);
        U64x2(_mm_mask_i64gather_epi64::<8>(
            fallback.0,
            base.as_ptr().cast(),
            idx.0,
            mask64x2(bits),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u64], idx: Self) -> (Self, Self) {
        // No 128-bit gather lane exists on x86 (Observation ②): two gathers.
        let two = Self::splat(2);
        let kidx = idx.mullo(two);
        let vidx = kidx.add(Self::splat(1));
        let keys = Self::gather_idx(base, kidx);
        let vals = Self::gather_idx(base, vidx);
        (keys, vals)
    }
}

impl Vector for U16x8 {
    type Lane = u16;
    const LANES: usize = 8;
    const WIDTH_BITS: usize = 128;

    #[inline(always)]
    fn splat(x: u16) -> Self {
        U16x8(unsafe { _mm_set1_epi16(x as i16) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u16]) -> Self {
        assert!(xs.len() >= 8);
        U16x8(unsafe { _mm_loadu_si128(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u16], hi: &[u16]) -> Self {
        assert!(lo.len() >= 4 && hi.len() >= 4);
        unsafe {
            let l = _mm_loadl_epi64(lo.as_ptr().cast());
            let h = _mm_loadl_epi64(hi.as_ptr().cast());
            U16x8(_mm_unpacklo_epi64(l, h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u16]) -> (Self, Self) {
        assert!(xs.len() >= 16);
        unsafe {
            let a = _mm_loadu_si128(xs.as_ptr().cast());
            let b = _mm_loadu_si128(xs.as_ptr().add(8).cast());
            // pshufb: pack even 16-bit elements into the low 8 bytes,
            // odd elements into the high 8 bytes.
            let sel = _mm_setr_epi8(0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15);
            let ap = _mm_shuffle_epi8(a, sel);
            let bp = _mm_shuffle_epi8(b, sel);
            (
                U16x8(_mm_unpacklo_epi64(ap, bp)),
                U16x8(_mm_unpackhi_epi64(ap, bp)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u16]) {
        assert!(out.len() >= 8);
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U16x8(unsafe { _mm_add_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U16x8(unsafe { _mm_and_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U16x8(unsafe { _mm_or_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U16x8(unsafe { _mm_xor_si128(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U16x8(unsafe { _mm_mullo_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x8(unsafe { _mm_srl_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x8(unsafe { _mm_sll_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm_cmpeq_epi16(self.0, other.0);
            super::even_bits_u32(_mm_movemask_epi8(eq) as u32 & 0xFFFF)
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U16x8(unsafe { _mm_blendv_epi8(if_clear.0, if_set.0, mask16x8(bits)) })
    }

    // x86 has no 16-bit-lane gathers on any ISA level; these scalar
    // emulations mirror what period hardware forced implementations to do
    // (and why the paper never runs vertical SIMD on 16-bit keys).
    #[inline(always)]
    unsafe fn gather_idx(base: &[u16], idx: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 8];
        for i in 0..8 {
            let j = lanes[i] as usize;
            debug_assert!(j < base.len());
            out[i] = *base.get_unchecked(j);
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u16], idx: Self, bits: u64, fallback: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 8];
        fallback.write_to_slice(&mut out);
        for i in 0..8 {
            if bits & (1 << i) != 0 {
                let j = lanes[i] as usize;
                debug_assert!(j < base.len());
                out[i] = *base.get_unchecked(j);
            }
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u16], idx: Self) -> (Self, Self) {
        let lanes = idx.to_lanes();
        let mut keys = [0u16; 8];
        let mut vals = [0u16; 8];
        for i in 0..8 {
            let p = lanes[i] as usize;
            debug_assert!(2 * p + 1 < base.len());
            keys[i] = *base.get_unchecked(2 * p);
            vals[i] = *base.get_unchecked(2 * p + 1);
        }
        (Self::from_slice(&keys), Self::from_slice(&vals))
    }
}
