//! 256-bit AVX2 vectors: [`U32x8`], [`U64x4`], [`U16x16`].
//!
//! These are the paper's `W = 256` (AVX2) configurations — e.g. the
//! horizontal probe of a (2,4) BCHT with 32-bit keys loads both candidate
//! buckets into one `U32x8`, and the vertical probe of an N-way table looks
//! up 8 keys per iteration.

use core::arch::x86_64::*;

use crate::vector::Vector;

/// 8 × u32 in a 256-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U32x8(__m256i);

/// 4 × u64 in a 256-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U64x4(__m256i);

/// 16 × u16 in a 256-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U16x16(__m256i);

#[inline(always)]
fn mask32x8(bits: u64) -> __m256i {
    // SAFETY: avx2 implied by the module gate.
    unsafe {
        let tbl = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let b = _mm256_set1_epi32(bits as i32);
        _mm256_cmpeq_epi32(_mm256_and_si256(b, tbl), tbl)
    }
}

#[inline(always)]
fn mask64x4(bits: u64) -> __m256i {
    // SAFETY: as above.
    unsafe {
        let tbl = _mm256_setr_epi64x(1, 2, 4, 8);
        let b = _mm256_set1_epi64x(bits as i64);
        _mm256_cmpeq_epi64(_mm256_and_si256(b, tbl), tbl)
    }
}

#[inline(always)]
fn mask16x16(bits: u64) -> __m256i {
    // SAFETY: as above.
    unsafe {
        let tbl = _mm256_setr_epi16(
            1,
            2,
            4,
            8,
            16,
            32,
            64,
            128,
            256,
            512,
            1024,
            2048,
            4096,
            8192,
            16384,
            i16::MIN, // 1 << 15
        );
        let b = _mm256_set1_epi16(bits as i16);
        _mm256_cmpeq_epi16(_mm256_and_si256(b, tbl), tbl)
    }
}

/// 64-bit lane-wise `mullo` for 256-bit vectors without AVX-512DQ.
#[inline(always)]
pub(crate) fn mullo64_256(a: __m256i, b: __m256i) -> __m256i {
    // SAFETY: avx2 implied by the module gate.
    unsafe {
        let ahi = _mm256_srli_epi64::<32>(a);
        let bhi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let hl = _mm256_mul_epu32(ahi, b);
        let lh = _mm256_mul_epu32(a, bhi);
        let hi = _mm256_slli_epi64::<32>(_mm256_add_epi64(hl, lh));
        _mm256_add_epi64(ll, hi)
    }
}

/// De-interleave two 256-bit vectors holding 8 (u32,u32) pairs into
/// (evens, odds) in element order.
#[inline(always)]
fn deinterleave32x8(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    // SAFETY: avx2 implied by the module gate.
    unsafe {
        let af = _mm256_castsi256_ps(a);
        let bf = _mm256_castsi256_ps(b);
        // shuffle_ps works per 128-bit half, so a cross-half fixup follows.
        let ev = _mm256_castps_si256(_mm256_shuffle_ps::<0b10_00_10_00>(af, bf));
        let od = _mm256_castps_si256(_mm256_shuffle_ps::<0b11_01_11_01>(af, bf));
        (
            _mm256_permute4x64_epi64::<0b11_01_10_00>(ev),
            _mm256_permute4x64_epi64::<0b11_01_10_00>(od),
        )
    }
}

macro_rules! debug_gather_bounds {
    ($base:expr, $idx:expr, $bits:expr, $lanes:expr) => {
        if cfg!(debug_assertions) {
            let lanes = $idx.to_lanes();
            for i in 0..$lanes {
                if $bits & (1 << i) != 0 {
                    let j = crate::lane::Lane::to_u64(lanes[i]) as usize;
                    assert!(j < $base.len(), "gather lane {i} out of bounds: {j}");
                }
            }
        }
    };
}

impl Vector for U32x8 {
    type Lane = u32;
    const LANES: usize = 8;
    const WIDTH_BITS: usize = 256;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: avx2 implied by the module gate (likewise below).
        U32x8(unsafe { _mm256_set1_epi32(x as i32) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u32]) -> Self {
        assert!(xs.len() >= 8);
        U32x8(unsafe { _mm256_loadu_si256(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u32], hi: &[u32]) -> Self {
        assert!(lo.len() >= 4 && hi.len() >= 4);
        unsafe {
            let l = _mm_loadu_si128(lo.as_ptr().cast());
            let h = _mm_loadu_si128(hi.as_ptr().cast());
            U32x8(_mm256_inserti128_si256::<1>(_mm256_castsi128_si256(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u32]) -> (Self, Self) {
        assert!(xs.len() >= 16);
        unsafe {
            let a = _mm256_loadu_si256(xs.as_ptr().cast());
            let b = _mm256_loadu_si256(xs.as_ptr().add(8).cast());
            let (e, o) = deinterleave32x8(a, b);
            (U32x8(e), U32x8(o))
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u32]) {
        assert!(out.len() >= 8);
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U32x8(unsafe { _mm256_add_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U32x8(unsafe { _mm256_and_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U32x8(unsafe { _mm256_or_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U32x8(unsafe { _mm256_xor_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U32x8(unsafe { _mm256_mullo_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x8(unsafe { _mm256_srl_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x8(unsafe { _mm256_sll_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm256_cmpeq_epi32(self.0, other.0);
            _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32 as u64
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U32x8(unsafe { _mm256_blendv_epi8(if_clear.0, if_set.0, mask32x8(bits)) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u32], idx: Self) -> Self {
        debug_gather_bounds!(base, idx, u64::MAX, 8);
        U32x8(_mm256_i32gather_epi32::<4>(base.as_ptr().cast(), idx.0))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u32], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_gather_bounds!(base, idx, bits, 8);
        U32x8(_mm256_mask_i32gather_epi32::<4>(
            fallback.0,
            base.as_ptr().cast(),
            idx.0,
            mask32x8(bits),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u32], idx: Self) -> (Self, Self) {
        if cfg!(debug_assertions) {
            let lanes = idx.to_lanes();
            for (i, l) in lanes.iter().enumerate().take(8) {
                let p = *l as usize;
                assert!(2 * p + 1 < base.len(), "gather_pairs lane {i} oob: {p}");
            }
        }
        // One 64-bit gather lane per (key, value) pair — the paper's
        // "fewer wider gathers".
        let idx_lo = _mm256_castsi256_si128(idx.0);
        let idx_hi = _mm256_extracti128_si256::<1>(idx.0);
        let pairs_lo = _mm256_i32gather_epi64::<8>(base.as_ptr().cast(), idx_lo);
        let pairs_hi = _mm256_i32gather_epi64::<8>(base.as_ptr().cast(), idx_hi);
        let (keys, vals) = deinterleave32x8(pairs_lo, pairs_hi);
        (U32x8(keys), U32x8(vals))
    }
}

impl Vector for U64x4 {
    type Lane = u64;
    const LANES: usize = 4;
    const WIDTH_BITS: usize = 256;

    #[inline(always)]
    fn splat(x: u64) -> Self {
        U64x4(unsafe { _mm256_set1_epi64x(x as i64) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u64]) -> Self {
        assert!(xs.len() >= 4);
        U64x4(unsafe { _mm256_loadu_si256(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u64], hi: &[u64]) -> Self {
        assert!(lo.len() >= 2 && hi.len() >= 2);
        unsafe {
            let l = _mm_loadu_si128(lo.as_ptr().cast());
            let h = _mm_loadu_si128(hi.as_ptr().cast());
            U64x4(_mm256_inserti128_si256::<1>(_mm256_castsi128_si256(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u64]) -> (Self, Self) {
        assert!(xs.len() >= 8);
        unsafe {
            let a = _mm256_loadu_si256(xs.as_ptr().cast());
            let b = _mm256_loadu_si256(xs.as_ptr().add(4).cast());
            // unpack{lo,hi} interleave per 128-bit half: fix with permute.
            let ev = _mm256_unpacklo_epi64(a, b); // [a0 b0 a2 b2]
            let od = _mm256_unpackhi_epi64(a, b); // [a1 b1 a3 b3]
            (
                U64x4(_mm256_permute4x64_epi64::<0b11_01_10_00>(ev)),
                U64x4(_mm256_permute4x64_epi64::<0b11_01_10_00>(od)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u64]) {
        assert!(out.len() >= 4);
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U64x4(unsafe { _mm256_add_epi64(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U64x4(unsafe { _mm256_and_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U64x4(unsafe { _mm256_or_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U64x4(unsafe { _mm256_xor_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U64x4(mullo64_256(self.0, other.0))
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x4(unsafe { _mm256_srl_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x4(unsafe { _mm256_sll_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm256_cmpeq_epi64(self.0, other.0);
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U64x4(unsafe { _mm256_blendv_epi8(if_clear.0, if_set.0, mask64x4(bits)) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u64], idx: Self) -> Self {
        debug_gather_bounds!(base, idx, u64::MAX, 4);
        U64x4(_mm256_i64gather_epi64::<8>(base.as_ptr().cast(), idx.0))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u64], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_gather_bounds!(base, idx, bits, 4);
        U64x4(_mm256_mask_i64gather_epi64::<8>(
            fallback.0,
            base.as_ptr().cast(),
            idx.0,
            mask64x4(bits),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u64], idx: Self) -> (Self, Self) {
        // 128-bit pairs cannot be gathered in one instruction (Observation ②).
        let kidx = self_shl1(idx);
        let vidx = kidx.add(Self::splat(1));
        (Self::gather_idx(base, kidx), Self::gather_idx(base, vidx))
    }
}

#[inline(always)]
fn self_shl1(v: U64x4) -> U64x4 {
    v.shl(1)
}

impl Vector for U16x16 {
    type Lane = u16;
    const LANES: usize = 16;
    const WIDTH_BITS: usize = 256;

    #[inline(always)]
    fn splat(x: u16) -> Self {
        U16x16(unsafe { _mm256_set1_epi16(x as i16) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u16]) -> Self {
        assert!(xs.len() >= 16);
        U16x16(unsafe { _mm256_loadu_si256(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u16], hi: &[u16]) -> Self {
        assert!(lo.len() >= 8 && hi.len() >= 8);
        unsafe {
            let l = _mm_loadu_si128(lo.as_ptr().cast());
            let h = _mm_loadu_si128(hi.as_ptr().cast());
            U16x16(_mm256_inserti128_si256::<1>(_mm256_castsi128_si256(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u16]) -> (Self, Self) {
        assert!(xs.len() >= 32);
        unsafe {
            let a = _mm256_loadu_si256(xs.as_ptr().cast());
            let b = _mm256_loadu_si256(xs.as_ptr().add(16).cast());
            // Per-128-lane byte shuffle packs evens low / odds high, then a
            // 64-bit permute re-orders across halves.
            let sel = _mm256_setr_epi8(
                0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15, 0, 1, 4, 5, 8, 9, 12, 13, 2,
                3, 6, 7, 10, 11, 14, 15,
            );
            let ap = _mm256_shuffle_epi8(a, sel); // [aE0 aO0 aE1 aO1] per 64-bit group
            let bp = _mm256_shuffle_epi8(b, sel);
            let ev = _mm256_unpacklo_epi64(ap, bp); // [aE0 bE0 aE1 bE1]
            let od = _mm256_unpackhi_epi64(ap, bp);
            (
                U16x16(_mm256_permute4x64_epi64::<0b11_01_10_00>(ev)),
                U16x16(_mm256_permute4x64_epi64::<0b11_01_10_00>(od)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u16]) {
        assert!(out.len() >= 16);
        unsafe { _mm256_storeu_si256(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U16x16(unsafe { _mm256_add_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U16x16(unsafe { _mm256_and_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U16x16(unsafe { _mm256_or_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U16x16(unsafe { _mm256_xor_si256(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U16x16(unsafe { _mm256_mullo_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x16(unsafe { _mm256_srl_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x16(unsafe { _mm256_sll_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        unsafe {
            let eq = _mm256_cmpeq_epi16(self.0, other.0);
            super::even_bits_u32(_mm256_movemask_epi8(eq) as u32)
        }
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U16x16(unsafe { _mm256_blendv_epi8(if_clear.0, if_set.0, mask16x16(bits)) })
    }

    // No 16-bit gathers on x86 — scalar emulation (see `v128::U16x8`).
    #[inline(always)]
    unsafe fn gather_idx(base: &[u16], idx: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 16];
        for i in 0..16 {
            let j = lanes[i] as usize;
            debug_assert!(j < base.len());
            out[i] = *base.get_unchecked(j);
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u16], idx: Self, bits: u64, fallback: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 16];
        fallback.write_to_slice(&mut out);
        for i in 0..16 {
            if bits & (1 << i) != 0 {
                let j = lanes[i] as usize;
                debug_assert!(j < base.len());
                out[i] = *base.get_unchecked(j);
            }
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u16], idx: Self) -> (Self, Self) {
        let lanes = idx.to_lanes();
        let mut keys = [0u16; 16];
        let mut vals = [0u16; 16];
        for i in 0..16 {
            let p = lanes[i] as usize;
            debug_assert!(2 * p + 1 < base.len());
            keys[i] = *base.get_unchecked(2 * p);
            vals[i] = *base.get_unchecked(2 * p + 1);
        }
        (Self::from_slice(&keys), Self::from_slice(&vals))
    }
}
