//! 512-bit AVX-512 vectors: [`U32x16`], [`U64x8`], [`U16x32`].
//!
//! These are the paper's `W = 512` configurations: a vertical probe over an
//! N-way cuckoo table looks up 16 keys per iteration (Case Study ③), and a
//! horizontal probe can hold an entire (2,8) bucket pair or a full
//! 64-byte cache line in one register (§I, Challenge ③).
//!
//! AVX-512 makes two things structurally cheaper than AVX2: compares produce
//! mask registers directly (no movemask), and gathers/blends accept those
//! masks natively (no bitmask→vector-mask expansion).

use core::arch::x86_64::*;

use crate::vector::Vector;

/// 16 × u32 in a 512-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U32x16(__m512i);

/// 8 × u64 in a 512-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U64x8(__m512i);

/// 32 × u16 in a 512-bit register.
#[derive(Copy, Clone, Debug)]
pub struct U16x32(__m512i);

macro_rules! debug_gather_bounds {
    ($base:expr, $idx:expr, $bits:expr, $lanes:expr) => {
        if cfg!(debug_assertions) {
            let lanes = $idx.to_lanes();
            for i in 0..$lanes {
                if $bits & (1 << i) != 0 {
                    let j = crate::lane::Lane::to_u64(lanes[i]) as usize;
                    assert!(j < $base.len(), "gather lane {i} out of bounds: {j}");
                }
            }
        }
    };
}

impl Vector for U32x16 {
    type Lane = u32;
    const LANES: usize = 16;
    const WIDTH_BITS: usize = 512;

    #[inline(always)]
    fn splat(x: u32) -> Self {
        // SAFETY: avx512f (+bw/dq/vl) implied by the module gate; the same
        // justification applies to every intrinsic call in this module.
        U32x16(unsafe { _mm512_set1_epi32(x as i32) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u32]) -> Self {
        assert!(xs.len() >= 16);
        U32x16(unsafe { _mm512_loadu_si512(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u32], hi: &[u32]) -> Self {
        assert!(lo.len() >= 8 && hi.len() >= 8);
        unsafe {
            let l = _mm256_loadu_si256(lo.as_ptr().cast());
            let h = _mm256_loadu_si256(hi.as_ptr().cast());
            U32x16(_mm512_inserti64x4::<1>(_mm512_castsi256_si512(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u32]) -> (Self, Self) {
        assert!(xs.len() >= 32);
        unsafe {
            let a = _mm512_loadu_si512(xs.as_ptr().cast());
            let b = _mm512_loadu_si512(xs.as_ptr().add(16).cast());
            let evens =
                _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
            let odds = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31);
            (
                U32x16(_mm512_permutex2var_epi32(a, evens, b)),
                U32x16(_mm512_permutex2var_epi32(a, odds, b)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u32]) {
        assert!(out.len() >= 16);
        unsafe { _mm512_storeu_si512(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U32x16(unsafe { _mm512_add_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U32x16(unsafe { _mm512_and_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U32x16(unsafe { _mm512_or_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U32x16(unsafe { _mm512_xor_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U32x16(unsafe { _mm512_mullo_epi32(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x16(unsafe { _mm512_srl_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 32);
        U32x16(unsafe { _mm512_sll_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        u64::from(unsafe { _mm512_cmpeq_epi32_mask(self.0, other.0) })
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U32x16(unsafe { _mm512_mask_blend_epi32(bits as __mmask16, if_clear.0, if_set.0) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u32], idx: Self) -> Self {
        debug_gather_bounds!(base, idx, u64::MAX, 16);
        U32x16(_mm512_i32gather_epi32::<4>(idx.0, base.as_ptr().cast()))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u32], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_gather_bounds!(base, idx, bits, 16);
        U32x16(_mm512_mask_i32gather_epi32::<4>(
            fallback.0,
            bits as __mmask16,
            idx.0,
            base.as_ptr().cast(),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u32], idx: Self) -> (Self, Self) {
        if cfg!(debug_assertions) {
            let lanes = idx.to_lanes();
            for (i, l) in lanes.iter().enumerate().take(16) {
                let p = *l as usize;
                assert!(2 * p + 1 < base.len(), "gather_pairs lane {i} oob: {p}");
            }
        }
        let idx_lo = _mm512_castsi512_si256(idx.0);
        let idx_hi = _mm512_extracti64x4_epi64::<1>(idx.0);
        let pairs_lo = _mm512_i32gather_epi64::<8>(idx_lo, base.as_ptr().cast());
        let pairs_hi = _mm512_i32gather_epi64::<8>(idx_hi, base.as_ptr().cast());
        let evens = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
        let odds = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31);
        (
            U32x16(_mm512_permutex2var_epi32(pairs_lo, evens, pairs_hi)),
            U32x16(_mm512_permutex2var_epi32(pairs_lo, odds, pairs_hi)),
        )
    }
}

impl Vector for U64x8 {
    type Lane = u64;
    const LANES: usize = 8;
    const WIDTH_BITS: usize = 512;

    #[inline(always)]
    fn splat(x: u64) -> Self {
        U64x8(unsafe { _mm512_set1_epi64(x as i64) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u64]) -> Self {
        assert!(xs.len() >= 8);
        U64x8(unsafe { _mm512_loadu_si512(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u64], hi: &[u64]) -> Self {
        assert!(lo.len() >= 4 && hi.len() >= 4);
        unsafe {
            let l = _mm256_loadu_si256(lo.as_ptr().cast());
            let h = _mm256_loadu_si256(hi.as_ptr().cast());
            U64x8(_mm512_inserti64x4::<1>(_mm512_castsi256_si512(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u64]) -> (Self, Self) {
        assert!(xs.len() >= 16);
        unsafe {
            let a = _mm512_loadu_si512(xs.as_ptr().cast());
            let b = _mm512_loadu_si512(xs.as_ptr().add(8).cast());
            let evens = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
            let odds = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
            (
                U64x8(_mm512_permutex2var_epi64(a, evens, b)),
                U64x8(_mm512_permutex2var_epi64(a, odds, b)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u64]) {
        assert!(out.len() >= 8);
        unsafe { _mm512_storeu_si512(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U64x8(unsafe { _mm512_add_epi64(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U64x8(unsafe { _mm512_and_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U64x8(unsafe { _mm512_or_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U64x8(unsafe { _mm512_xor_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        // Native 64-bit mullo requires AVX-512DQ, which this module gates on.
        U64x8(unsafe { _mm512_mullo_epi64(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x8(unsafe { _mm512_srl_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 64);
        U64x8(unsafe { _mm512_sll_epi64(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        u64::from(unsafe { _mm512_cmpeq_epi64_mask(self.0, other.0) })
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U64x8(unsafe { _mm512_mask_blend_epi64(bits as __mmask8, if_clear.0, if_set.0) })
    }

    #[inline(always)]
    unsafe fn gather_idx(base: &[u64], idx: Self) -> Self {
        debug_gather_bounds!(base, idx, u64::MAX, 8);
        U64x8(_mm512_i64gather_epi64::<8>(idx.0, base.as_ptr().cast()))
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u64], idx: Self, bits: u64, fallback: Self) -> Self {
        debug_gather_bounds!(base, idx, bits, 8);
        U64x8(_mm512_mask_i64gather_epi64::<8>(
            fallback.0,
            bits as __mmask8,
            idx.0,
            base.as_ptr().cast(),
        ))
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u64], idx: Self) -> (Self, Self) {
        // 128-bit pairs exceed the widest gather lane (Observation ②).
        let kidx = idx.shl(1);
        let vidx = kidx.add(Self::splat(1));
        (Self::gather_idx(base, kidx), Self::gather_idx(base, vidx))
    }
}

impl Vector for U16x32 {
    type Lane = u16;
    const LANES: usize = 32;
    const WIDTH_BITS: usize = 512;

    #[inline(always)]
    fn splat(x: u16) -> Self {
        U16x32(unsafe { _mm512_set1_epi16(x as i16) })
    }

    #[inline(always)]
    fn from_slice(xs: &[u16]) -> Self {
        assert!(xs.len() >= 32);
        U16x32(unsafe { _mm512_loadu_si512(xs.as_ptr().cast()) })
    }

    #[inline(always)]
    fn from_two_slices(lo: &[u16], hi: &[u16]) -> Self {
        assert!(lo.len() >= 16 && hi.len() >= 16);
        unsafe {
            let l = _mm256_loadu_si256(lo.as_ptr().cast());
            let h = _mm256_loadu_si256(hi.as_ptr().cast());
            U16x32(_mm512_inserti64x4::<1>(_mm512_castsi256_si512(l), h))
        }
    }

    #[inline(always)]
    fn load_deinterleave_2(xs: &[u16]) -> (Self, Self) {
        assert!(xs.len() >= 64);
        unsafe {
            let a = _mm512_loadu_si512(xs.as_ptr().cast());
            let b = _mm512_loadu_si512(xs.as_ptr().add(32).cast());
            let mut ev = [0i16; 32];
            let mut od = [0i16; 32];
            for i in 0..32 {
                ev[i] = (2 * i) as i16;
                od[i] = (2 * i + 1) as i16;
            }
            let evens = _mm512_loadu_si512(ev.as_ptr().cast());
            let odds = _mm512_loadu_si512(od.as_ptr().cast());
            (
                U16x32(_mm512_permutex2var_epi16(a, evens, b)),
                U16x32(_mm512_permutex2var_epi16(a, odds, b)),
            )
        }
    }

    #[inline(always)]
    fn write_to_slice(self, out: &mut [u16]) {
        assert!(out.len() >= 32);
        unsafe { _mm512_storeu_si512(out.as_mut_ptr().cast(), self.0) }
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        U16x32(unsafe { _mm512_add_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn and(self, other: Self) -> Self {
        U16x32(unsafe { _mm512_and_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn or(self, other: Self) -> Self {
        U16x32(unsafe { _mm512_or_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        U16x32(unsafe { _mm512_xor_si512(self.0, other.0) })
    }

    #[inline(always)]
    fn mullo(self, other: Self) -> Self {
        U16x32(unsafe { _mm512_mullo_epi16(self.0, other.0) })
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x32(unsafe { _mm512_srl_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        debug_assert!(n < 16);
        U16x32(unsafe { _mm512_sll_epi16(self.0, _mm_cvtsi32_si128(n as i32)) })
    }

    #[inline(always)]
    fn cmpeq_bits(self, other: Self) -> u64 {
        u64::from(unsafe { _mm512_cmpeq_epi16_mask(self.0, other.0) })
    }

    #[inline(always)]
    fn blend_bits(bits: u64, if_set: Self, if_clear: Self) -> Self {
        U16x32(unsafe { _mm512_mask_blend_epi16(bits as __mmask32, if_clear.0, if_set.0) })
    }

    // No 16-bit gathers on x86 — scalar emulation (see `v128::U16x8`).
    #[inline(always)]
    unsafe fn gather_idx(base: &[u16], idx: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 32];
        for i in 0..32 {
            let j = lanes[i] as usize;
            debug_assert!(j < base.len());
            out[i] = *base.get_unchecked(j);
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_idx_masked(base: &[u16], idx: Self, bits: u64, fallback: Self) -> Self {
        let lanes = idx.to_lanes();
        let mut out = [0u16; 32];
        fallback.write_to_slice(&mut out);
        for i in 0..32 {
            if bits & (1 << i) != 0 {
                let j = lanes[i] as usize;
                debug_assert!(j < base.len());
                out[i] = *base.get_unchecked(j);
            }
        }
        Self::from_slice(&out)
    }

    #[inline(always)]
    unsafe fn gather_pairs(base: &[u16], idx: Self) -> (Self, Self) {
        let lanes = idx.to_lanes();
        let mut keys = [0u16; 32];
        let mut vals = [0u16; 32];
        for i in 0..32 {
            let p = lanes[i] as usize;
            debug_assert!(2 * p + 1 < base.len());
            keys[i] = *base.get_unchecked(2 * p);
            vals[i] = *base.get_unchecked(2 * p + 1);
        }
        (Self::from_slice(&keys), Self::from_slice(&vals))
    }
}
