//! Property tests proving every x86 intrinsic backend computes exactly what
//! the portable emulated backend computes, lane for lane, for every `Vector`
//! operation.
//!
//! These tests only run on builds/CPUs where the corresponding backend is
//! compiled in (the workspace builds with `-C target-cpu=native`).

#![cfg(all(target_arch = "x86_64", target_feature = "avx2"))]

use proptest::prelude::*;
use simdht_simd::emu::Emu;
use simdht_simd::{Lane, Vector};

/// Exhaustively compare one op set between a backend `V` and `Emu` over the
/// given inputs.
fn check_pair<L, V, const LANES: usize>(a: &[L], b: &[L], shift: u32, bits: u64)
where
    L: Lane,
    V: Vector<Lane = L>,
{
    assert_eq!(V::LANES, LANES);
    type E<L, const N: usize> = Emu<L, N>;
    let va = V::from_slice(a);
    let vb = V::from_slice(b);
    let ea = E::<L, LANES>::from_slice(a);
    let eb = E::<L, LANES>::from_slice(b);
    let bits = bits & V::lane_mask();

    let eq = |v: V, e: E<L, LANES>, what: &str| {
        assert_eq!(&v.to_lanes()[..LANES], &e.to_lanes()[..LANES], "{what}");
    };

    eq(va.add(vb), ea.add(eb), "add");
    eq(va.and(vb), ea.and(eb), "and");
    eq(va.or(vb), ea.or(eb), "or");
    eq(va.xor(vb), ea.xor(eb), "xor");
    eq(va.mullo(vb), ea.mullo(eb), "mullo");
    eq(va.shr(shift), ea.shr(shift), "shr");
    eq(va.shl(shift), ea.shl(shift), "shl");
    assert_eq!(va.cmpeq_bits(vb), ea.cmpeq_bits(eb), "cmpeq_bits");
    assert_eq!(
        va.cmpeq_bits(va),
        V::lane_mask(),
        "self-compare must match all lanes"
    );
    eq(
        V::blend_bits(bits, va, vb),
        E::<L, LANES>::blend_bits(bits, ea, eb),
        "blend_bits",
    );
    eq(V::splat(a[0]), E::<L, LANES>::splat(a[0]), "splat");
    eq(
        V::from_two_slices(a, b),
        E::<L, LANES>::from_two_slices(a, b),
        "from_two_slices",
    );

    // Deinterleave needs 2*LANES elements: concatenate a and b.
    let mut cat = Vec::with_capacity(2 * LANES);
    cat.extend_from_slice(&a[..LANES]);
    cat.extend_from_slice(&b[..LANES]);
    let (v_ev, v_od) = V::load_deinterleave_2(&cat);
    let (e_ev, e_od) = E::<L, LANES>::load_deinterleave_2(&cat);
    eq(v_ev, e_ev, "load_deinterleave_2 evens");
    eq(v_od, e_od, "load_deinterleave_2 odds");
}

/// Compare gather ops between backend `V` and `Emu` using `idx` values
/// reduced into `base`'s range.
fn check_gathers<L, V, const LANES: usize>(base: &[L], raw_idx: &[u64], bits: u64, fallback: L)
where
    L: Lane,
    V: Vector<Lane = L>,
{
    assert_eq!(V::LANES, LANES);
    assert!(base.len() >= 2 * LANES);
    type E<L, const N: usize> = Emu<L, N>;
    let bits = bits & V::lane_mask();

    let n = base.len() as u64;
    let idx_vals: Vec<L> = raw_idx[..LANES]
        .iter()
        .map(|&x| L::from_u64(x % n))
        .collect();
    let pair_idx_vals: Vec<L> = raw_idx[..LANES]
        .iter()
        .map(|&x| L::from_u64(x % (n / 2)))
        .collect();

    let vidx = V::from_slice(&idx_vals);
    let eidx = E::<L, LANES>::from_slice(&idx_vals);
    let vp = V::from_slice(&pair_idx_vals);
    let ep = E::<L, LANES>::from_slice(&pair_idx_vals);

    // SAFETY: all indices were reduced modulo the base length above.
    unsafe {
        let g = V::gather_idx(base, vidx).to_lanes();
        let ge = E::<L, LANES>::gather_idx(base, eidx).to_lanes();
        assert_eq!(&g[..LANES], &ge[..LANES], "gather_idx");

        let m = V::gather_idx_masked(base, vidx, bits, V::splat(fallback)).to_lanes();
        let me = E::<L, LANES>::gather_idx_masked(base, eidx, bits, E::<L, LANES>::splat(fallback))
            .to_lanes();
        assert_eq!(&m[..LANES], &me[..LANES], "gather_idx_masked");

        let (k, v) = V::gather_pairs(base, vp);
        let (ke, ve) = E::<L, LANES>::gather_pairs(base, ep);
        assert_eq!(
            &k.to_lanes()[..LANES],
            &ke.to_lanes()[..LANES],
            "gather_pairs keys"
        );
        assert_eq!(
            &v.to_lanes()[..LANES],
            &ve.to_lanes()[..LANES],
            "gather_pairs vals"
        );
    }
}

macro_rules! equivalence_suite {
    ($name:ident, $lane:ty, $lanes:expr, $vty:ty, $max_shift:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(256))]

                #[test]
                fn ops_match_emulated(
                    a in prop::collection::vec(any::<$lane>(), $lanes),
                    b in prop::collection::vec(any::<$lane>(), $lanes),
                    shift in 0u32..$max_shift,
                    bits in any::<u64>(),
                ) {
                    check_pair::<$lane, $vty, $lanes>(&a, &b, shift, bits);
                }

                #[test]
                fn gathers_match_emulated(
                    base in prop::collection::vec(any::<$lane>(), (2 * $lanes)..256),
                    idx in prop::collection::vec(any::<u64>(), $lanes),
                    bits in any::<u64>(),
                    fallback in any::<$lane>(),
                ) {
                    check_gathers::<$lane, $vty, $lanes>(&base, &idx, bits, fallback);
                }

                #[test]
                fn equal_inputs_full_match(a in prop::collection::vec(any::<$lane>(), $lanes)) {
                    let v = <$vty>::from_slice(&a);
                    prop_assert_eq!(v.cmpeq_bits(v), <$vty>::lane_mask());
                }
            }
        }
    };
}

equivalence_suite!(v128_u32, u32, 4, simdht_simd::x86::v128::U32x4, 32);
equivalence_suite!(v128_u64, u64, 2, simdht_simd::x86::v128::U64x2, 64);
equivalence_suite!(v128_u16, u16, 8, simdht_simd::x86::v128::U16x8, 16);
equivalence_suite!(v256_u32, u32, 8, simdht_simd::x86::v256::U32x8, 32);
equivalence_suite!(v256_u64, u64, 4, simdht_simd::x86::v256::U64x4, 64);
equivalence_suite!(v256_u16, u16, 16, simdht_simd::x86::v256::U16x16, 16);

#[cfg(all(
    target_feature = "avx512f",
    target_feature = "avx512bw",
    target_feature = "avx512dq",
    target_feature = "avx512vl"
))]
mod avx512 {
    use super::*;
    equivalence_suite!(v512_u32, u32, 16, simdht_simd::x86::v512::U32x16, 32);
    equivalence_suite!(v512_u64, u64, 8, simdht_simd::x86::v512::U64x8, 64);
    equivalence_suite!(v512_u16, u16, 32, simdht_simd::x86::v512::U16x32, 16);
}
