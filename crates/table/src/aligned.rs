//! Cache-line-aligned storage for hash-table slots.
//!
//! Bucketized cuckoo tables get their speed from fitting each bucket into as
//! few cache lines as possible (paper §II-A); that only holds if bucket 0
//! starts on a cache-line boundary. `Vec<T>` gives no such guarantee, so the
//! tables allocate through [`AlignedBuf`], which is always 64-byte aligned.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line size the tables align to.
pub const CACHE_LINE_BYTES: usize = 64;

/// A heap buffer of `len` elements of `T`, zero-initialized and aligned to
/// [`CACHE_LINE_BYTES`].
///
/// Dereferences to `[T]`.
///
/// # Examples
///
/// ```
/// use simdht_table::aligned::AlignedBuf;
///
/// let buf: AlignedBuf<u32> = AlignedBuf::new_zeroed(1024);
/// assert_eq!(buf.len(), 1024);
/// assert!(buf.iter().all(|&x| x == 0));
/// assert_eq!(buf.as_ptr() as usize % 64, 0);
/// ```
pub struct AlignedBuf<T> {
    ptr: NonNull<T>,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: `AlignedBuf` owns its allocation exclusively; it is exactly as
// thread-safe as `Vec<T>`.
unsafe impl<T: Send> Send for AlignedBuf<T> {}
unsafe impl<T: Sync> Sync for AlignedBuf<T> {}

impl<T: Copy + Default> AlignedBuf<T> {
    /// Allocate a zeroed, 64-byte-aligned buffer of `len` elements.
    ///
    /// `T` must be a plain integer type for which the all-zeroes bit pattern
    /// is valid (enforced by the `Copy + Default` bound plus this crate's
    /// usage: `u16`/`u32`/`u64` lanes only).
    ///
    /// # Panics
    ///
    /// Panics if `len * size_of::<T>()` overflows `isize`.
    pub fn new_zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: 0,
                _marker: PhantomData,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 and T is an integer).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    fn layout(len: usize) -> Layout {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("AlignedBuf size overflow");
        Layout::from_size_align(bytes, CACHE_LINE_BYTES.max(std::mem::align_of::<T>()))
            .expect("invalid AlignedBuf layout")
    }
}

impl<T> Deref for AlignedBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: `ptr` points at `len` initialized (zeroed) elements.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as above, and we hold `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let bytes = self.len * std::mem::size_of::<T>();
            let layout =
                Layout::from_size_align(bytes, CACHE_LINE_BYTES.max(std::mem::align_of::<T>()))
                    .expect("invalid AlignedBuf layout");
            // SAFETY: allocated in `new_zeroed` with the identical layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
        }
    }
}

impl<T: Copy + Default> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut out = Self::new_zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("align", &CACHE_LINE_BYTES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_aligned() {
        for len in [1usize, 7, 64, 1000, 4096] {
            let buf: AlignedBuf<u32> = AlignedBuf::new_zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_ptr() as usize % CACHE_LINE_BYTES, 0);
            assert!(buf.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn empty_buffer() {
        let buf: AlignedBuf<u64> = AlignedBuf::new_zeroed(0);
        assert!(buf.is_empty());
    }

    #[test]
    fn writable_and_cloneable() {
        let mut buf: AlignedBuf<u16> = AlignedBuf::new_zeroed(128);
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = i as u16;
        }
        let copy = buf.clone();
        assert_eq!(&buf[..], &copy[..]);
        assert_eq!(copy[127], 127);
        assert_eq!(copy.as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn u64_alignment() {
        let buf: AlignedBuf<u64> = AlignedBuf::new_zeroed(9);
        assert_eq!(buf.as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }
}
