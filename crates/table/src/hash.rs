//! The multiply-shift hash families used for N-way cuckoo hashing.
//!
//! Two placement schemes share one type:
//!
//! * **Independent** — each way *i* hashes a key `k` as
//!   `(k ⊙ aᵢ) >> (BITS − log₂ buckets)` with a fixed random odd multiplier
//!   `aᵢ` (Dietzfelbinger et al.'s multiply-shift scheme).
//! * **Tag-dispersed** (partial-key cuckoo, MemC3 / Fan et al. NSDI'13) —
//!   way 0 is the plain multiply-shift *base* bucket and every further way
//!   XORs a dispersal of the key's short *tag* fingerprint onto it:
//!   `bucketᵥ = bucket₀ ^ ((tag ⊙ Cᵥ) & mask)`. Because XOR is an
//!   involution, a 2-way entry's alternate bucket is derivable from its
//!   *current* bucket and tag alone — `alt = cur ^ disperse(tag)` — which is
//!   what lets the cuckoo relocation BFS walk occupants without re-hashing
//!   them from scratch (see [`HashFamily::relocation_buckets`]).
//!
//! Two properties matter for the SIMD kernels:
//!
//! 1. Every scheme is a handful of multiplies, shifts, and XORs — cheap
//!    enough that the paper's horizontal template computes all `N` buckets
//!    per key up front (`calc_N_hash_buckets`, Algorithm 1 line 15).
//! 2. All operations exist as per-lane vector instructions, which is what
//!    makes the vertical template's in-vector `vec_calc_hash`
//!    (Algorithm 2 line 16) possible. The SIMD kernels read the raw
//!    parameters ([`HashFamily::multiplier`], [`HashFamily::shift`],
//!    [`HashFamily::tag_multiplier`], …) and replicate the exact
//!    computation with `mullo` + `shr` + `and` + `xor`; every arithmetic
//!    step here is defined through `wrapping_mul`/truncating conversions so
//!    the scalar and in-register results agree bit-for-bit.

use rand::Rng;
use simdht_simd::Lane;

/// Fixed odd dispersal constants for ways `1..MAX_WAYS` of the
/// tag-dispersed scheme (way 0 is the undispersed base bucket). Odd
/// multipliers are invertible mod any power of two, so a nonzero tag can
/// only produce a zero dispersal when the tag itself is divisible by the
/// bucket count.
const DISPERSE_MULTIPLIERS: [u64; 7] = [
    0x5bd1_e995, // MurmurHash2 M (MemC3's tag-dispersal constant)
    0x9e37_79b9, // 2^32 / golden ratio
    0xcc9e_2d51, // Murmur3 c1
    0x1b87_3593, // Murmur3 c2
    0x85eb_ca6b, // Murmur3 fmix
    0xc2b2_ae35, // Murmur3 fmix
    0x27d4_eb2f, // xxHash PRIME32_3
];

/// Parameters of the tag-dispersed placement scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TagDisperse<K> {
    n_ways: u32,
    /// Odd multiplier of the tag fingerprint's multiply-shift.
    tag_multiplier: K,
    /// `K::BITS − tag bits`: right shift extracting the fingerprint.
    tag_shift: u32,
}

/// A family of up to [`crate::Layout::MAX_WAYS`] bucket-placement hash
/// functions over lane type `K`.
///
/// # Examples
///
/// ```
/// use simdht_table::HashFamily;
///
/// let family: HashFamily<u32> = HashFamily::deterministic(2, 10); // 1024 buckets
/// let b0 = family.bucket(12345, 0);
/// let b1 = family.bucket(12345, 1);
/// assert!(b0 < 1024 && b1 < 1024);
/// // Same key, same way, same bucket — always.
/// assert_eq!(b0, family.bucket(12345, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashFamily<K> {
    /// Per-way multipliers (independent scheme) or the single base
    /// multiplier (tag-dispersed scheme).
    multipliers: Vec<K>,
    log2_buckets: u32,
    shift: u32,
    tag: Option<TagDisperse<K>>,
}

impl<K: Lane> HashFamily<K> {
    /// Create an **independent** family of `n_ways` hash functions over
    /// `2^log2_buckets` buckets, drawing multipliers from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `log2_buckets >= K::BITS` (the bucket index must come from
    /// the top bits of a `K`-wide product) or if `n_ways == 0`.
    pub fn new(n_ways: u32, log2_buckets: u32, rng: &mut impl Rng) -> Self {
        assert!(n_ways >= 1, "need at least one hash function");
        assert!(
            log2_buckets < K::BITS,
            "log2_buckets {log2_buckets} must be < key bits {}",
            K::BITS
        );
        let multipliers = (0..n_ways)
            .map(|_| K::from_u64(rng.gen::<u64>() | 1)) // odd multiplier
            .collect();
        HashFamily {
            multipliers,
            log2_buckets,
            shift: K::BITS - log2_buckets,
            tag: None,
        }
    }

    /// Create a **tag-dispersed** family: way 0 is one random multiply-shift
    /// base function and ways `1..n_ways` XOR a dispersal of the key's
    /// [`HashFamily::tag`] fingerprint onto the base bucket
    /// (`bucketᵥ = bucket₀ ^ ((tag ⊙ Cᵥ) & mask)`).
    ///
    /// The fingerprint is `min(16, K::BITS / 2)` bits wide and never zero
    /// (zero remaps to one), so an occupant's alternate buckets are always
    /// recoverable from the fingerprint — the partial-key cuckoo property.
    ///
    /// # Panics
    ///
    /// As [`HashFamily::new`], plus `n_ways` must not exceed
    /// [`crate::Layout::MAX_WAYS`].
    pub fn tag_dispersed(n_ways: u32, log2_buckets: u32, rng: &mut impl Rng) -> Self {
        assert!(n_ways >= 1, "need at least one hash function");
        assert!(
            n_ways as usize <= crate::MAX_WAYS_USIZE,
            "tag-dispersed scheme has dispersal constants for {} ways",
            crate::MAX_WAYS_USIZE
        );
        assert!(
            log2_buckets < K::BITS,
            "log2_buckets {log2_buckets} must be < key bits {}",
            K::BITS
        );
        let tag_bits = 16u32.min(K::BITS / 2);
        HashFamily {
            multipliers: vec![K::from_u64(rng.gen::<u64>() | 1)],
            log2_buckets,
            shift: K::BITS - log2_buckets,
            tag: Some(TagDisperse {
                n_ways,
                tag_multiplier: K::from_u64(rng.gen::<u64>() | 1),
                tag_shift: K::BITS - tag_bits,
            }),
        }
    }

    /// Create an independent family with a fixed internal seed
    /// (reproducible runs).
    pub fn deterministic(n_ways: u32, log2_buckets: u32) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51_3d_47_b3_9c_2e_11);
        Self::new(n_ways, log2_buckets, &mut rng)
    }

    /// Number of ways (hash functions).
    pub fn n_ways(&self) -> u32 {
        match &self.tag {
            Some(t) => t.n_ways,
            None => self.multipliers.len() as u32,
        }
    }

    /// `log₂` of the bucket count.
    pub fn log2_buckets(&self) -> u32 {
        self.log2_buckets
    }

    /// Number of buckets (`2^log2_buckets`).
    pub fn num_buckets(&self) -> usize {
        1usize << self.log2_buckets
    }

    /// `num_buckets − 1`, the dispersal mask of the tag-dispersed scheme.
    pub fn bucket_mask(&self) -> usize {
        self.num_buckets() - 1
    }

    /// The right-shift amount (`K::BITS − log2_buckets`), needed by vector
    /// kernels replicating the hash in-register.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// `true` when this family uses the tag-dispersed placement scheme.
    pub fn is_tag_dispersed(&self) -> bool {
        self.tag.is_some()
    }

    /// The odd multiplier for `way` (independent scheme) or the base
    /// multiplier (`way == 0`, either scheme), needed by vector kernels.
    ///
    /// # Panics
    ///
    /// Panics if `way >= n_ways`, or if `way > 0` under the tag-dispersed
    /// scheme (further ways have no multiplier of their own — use
    /// [`HashFamily::disperse_multiplier`]).
    pub fn multiplier(&self, way: u32) -> K {
        self.multipliers[way as usize]
    }

    /// The tag fingerprint's odd multiplier (vector kernels replicate
    /// [`HashFamily::tag`] with `mullo` + `shr` + zero-remap).
    ///
    /// # Panics
    ///
    /// Panics unless the family is tag-dispersed.
    pub fn tag_multiplier(&self) -> K {
        self.tag
            .as_ref()
            .expect("independent scheme has no tag")
            .tag_multiplier
    }

    /// The right shift extracting the tag fingerprint (`K::BITS − tag bits`).
    ///
    /// # Panics
    ///
    /// Panics unless the family is tag-dispersed.
    pub fn tag_shift(&self) -> u32 {
        self.tag
            .as_ref()
            .expect("independent scheme has no tag")
            .tag_shift
    }

    /// The fixed odd dispersal constant of `way` under the tag-dispersed
    /// scheme (truncated to `K`'s width; truncation keeps it odd).
    ///
    /// # Panics
    ///
    /// Panics if `way == 0` (the base bucket is not dispersed) or
    /// `way >= n_ways`.
    pub fn disperse_multiplier(&self, way: u32) -> K {
        assert!(way >= 1, "way 0 is the undispersed base bucket");
        assert!(way < self.n_ways(), "way {way} out of range");
        K::from_u64(DISPERSE_MULTIPLIERS[(way - 1) as usize])
    }

    /// The nonzero tag fingerprint of `key` (zero remaps to one, mirroring
    /// MemC3: a zero tag would be indistinguishable from "no dispersal").
    ///
    /// # Panics
    ///
    /// Panics unless the family is tag-dispersed.
    #[inline(always)]
    pub fn tag(&self, key: K) -> K {
        let t = self.tag.as_ref().expect("independent scheme has no tag");
        let tag = key.wrapping_mul(t.tag_multiplier).shr(t.tag_shift);
        if tag == K::EMPTY {
            K::from_u64(1)
        } else {
            tag
        }
    }

    /// The XOR dispersal of `tag` for `way` under the tag-dispersed scheme:
    /// `(tag ⊙ Cᵥ) & mask`.
    ///
    /// # Panics
    ///
    /// As [`HashFamily::disperse_multiplier`].
    #[inline(always)]
    pub fn disperse(&self, tag: K, way: u32) -> usize {
        let d = tag.wrapping_mul(self.disperse_multiplier(way));
        d.to_u64() as usize & self.bucket_mask()
    }

    /// The 2-way partner of `cur_bucket` for an entry whose tag fingerprint
    /// is `tag`: `cur ^ disperse(tag, 1)`. XOR makes this an involution, so
    /// it maps the base bucket to the alternate and back — the relocation
    /// path never needs to know *which* way the entry currently occupies.
    ///
    /// # Panics
    ///
    /// Panics unless the family is tag-dispersed with exactly two ways.
    #[inline(always)]
    pub fn partner_bucket(&self, cur_bucket: usize, tag: K) -> usize {
        assert_eq!(
            self.n_ways(),
            2,
            "partner derivation is the 2-way involution"
        );
        cur_bucket ^ self.disperse(tag, 1)
    }

    #[inline(always)]
    fn base_bucket(&self, key: K) -> usize {
        let h = key.wrapping_mul(self.multipliers[0]);
        if self.shift >= K::BITS {
            0
        } else {
            h.shr(self.shift).to_u64() as usize
        }
    }

    /// The bucket index of `key` under hash function `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= n_ways`.
    #[inline(always)]
    pub fn bucket(&self, key: K, way: u32) -> usize {
        match &self.tag {
            None => {
                let h = key.wrapping_mul(self.multipliers[way as usize]);
                if self.shift >= K::BITS {
                    0
                } else {
                    h.shr(self.shift).to_u64() as usize
                }
            }
            Some(t) => {
                assert!(way < t.n_ways, "way {way} out of range");
                let b0 = self.base_bucket(key);
                if way == 0 {
                    b0
                } else {
                    b0 ^ self.disperse(self.tag(key), way)
                }
            }
        }
    }

    /// All candidate buckets of `key`, in way order, written into `out`.
    /// Returns the filled prefix. Under the tag-dispersed scheme the base
    /// bucket and tag are computed once and dispersed per way.
    #[inline(always)]
    pub fn buckets<'a>(&self, key: K, out: &'a mut [usize; crate::MAX_WAYS_USIZE]) -> &'a [usize] {
        match &self.tag {
            None => {
                let n = self.multipliers.len();
                for (way, slot) in out.iter_mut().enumerate().take(n) {
                    *slot = self.bucket(key, way as u32);
                }
                &out[..n]
            }
            Some(t) => {
                let n = t.n_ways as usize;
                let b0 = self.base_bucket(key);
                out[0] = b0;
                if n > 1 {
                    let tag = self.tag(key);
                    for (way, slot) in out.iter_mut().enumerate().take(n).skip(1) {
                        *slot = b0 ^ self.disperse(tag, way as u32);
                    }
                }
                &out[..n]
            }
        }
    }

    /// The candidate buckets `key` may *relocate to* from `cur_bucket`
    /// (every candidate bucket except `cur_bucket` itself), written into
    /// `out`. This is the cuckoo BFS's inner step, specialized per scheme:
    ///
    /// * tag-dispersed 2-way: the single partner comes from the XOR
    ///   involution [`HashFamily::partner_bucket`] — one tag multiply, no
    ///   base re-hash;
    /// * tag-dispersed N-way: one base multiply + one tag multiply, then a
    ///   dispersal XOR per way (instead of N independent multiplies);
    /// * independent: the plain per-way multiply-shift.
    pub fn relocation_buckets<'a>(
        &self,
        key: K,
        cur_bucket: usize,
        out: &'a mut [usize; crate::MAX_WAYS_USIZE],
    ) -> &'a [usize] {
        let mut n = 0usize;
        match &self.tag {
            Some(t) if t.n_ways == 2 => {
                let partner = self.partner_bucket(cur_bucket, self.tag(key));
                if partner != cur_bucket {
                    out[0] = partner;
                    n = 1;
                }
            }
            Some(t) => {
                let b0 = self.base_bucket(key);
                let tag = self.tag(key);
                for way in 0..t.n_ways {
                    let b = if way == 0 {
                        b0
                    } else {
                        b0 ^ self.disperse(tag, way)
                    };
                    if b != cur_bucket {
                        out[n] = b;
                        n += 1;
                    }
                }
            }
            None => {
                for way in 0..self.multipliers.len() as u32 {
                    let b = self.bucket(key, way);
                    if b != cur_bucket {
                        out[n] = b;
                        n += 1;
                    }
                }
            }
        }
        &out[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tag_fam(n_ways: u32, log2: u32) -> HashFamily<u32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7a6);
        HashFamily::tag_dispersed(n_ways, log2, &mut rng)
    }

    #[test]
    fn buckets_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let fam: HashFamily<u32> = HashFamily::new(3, 8, &mut rng);
        assert_eq!(fam.num_buckets(), 256);
        for key in 1u32..10_000 {
            for way in 0..3 {
                assert!(fam.bucket(key, way) < 256);
            }
        }
    }

    #[test]
    fn ways_differ() {
        let fam: HashFamily<u32> = HashFamily::deterministic(4, 12);
        // The ways should disagree for most keys.
        let disagreements = (1u32..1000)
            .filter(|&k| fam.bucket(k, 0) != fam.bucket(k, 1))
            .count();
        assert!(disagreements > 900, "ways too correlated: {disagreements}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let fam: HashFamily<u32> = HashFamily::deterministic(2, 6);
        let mut counts = [0usize; 64];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..64_000 {
            let k: u32 = rand::Rng::gen(&mut rng);
            counts[fam.bucket(k, 0)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // mean 1000 per bucket; allow generous slack.
        assert!(*min > 700 && *max < 1300, "skewed: min={min} max={max}");
    }

    #[test]
    fn u16_and_u64_families() {
        let f16: HashFamily<u16> = HashFamily::deterministic(2, 10);
        assert!(f16.bucket(1234u16, 1) < 1024);
        let f64: HashFamily<u64> = HashFamily::deterministic(3, 20);
        assert!(f64.bucket(0xDEAD_BEEF_u64, 2) < (1 << 20));
    }

    #[test]
    fn shift_matches_scalar_reimplementation() {
        let fam: HashFamily<u32> = HashFamily::deterministic(2, 9);
        for key in [1u32, 99, 12345, u32::MAX] {
            for way in 0..2 {
                let manual = (key.wrapping_mul(fam.multiplier(way))) >> fam.shift();
                assert_eq!(fam.bucket(key, way), manual as usize);
            }
        }
    }

    #[test]
    fn buckets_helper_fills_prefix() {
        let fam: HashFamily<u32> = HashFamily::deterministic(3, 8);
        let mut out = [0usize; crate::MAX_WAYS_USIZE];
        let filled = fam.buckets(42, &mut out);
        assert_eq!(filled.len(), 3);
        assert_eq!(filled[1], fam.bucket(42, 1));
    }

    #[test]
    fn tag_dispersed_buckets_in_range_and_stable() {
        for n_ways in [2u32, 3, 4, 8] {
            let fam = tag_fam(n_ways, 9);
            let mut out = [0usize; crate::MAX_WAYS_USIZE];
            for key in 1u32..5_000 {
                let filled: Vec<usize> = fam.buckets(key, &mut out).to_vec();
                assert_eq!(filled.len(), n_ways as usize);
                for (way, &b) in filled.iter().enumerate() {
                    assert!(b < 512);
                    assert_eq!(b, fam.bucket(key, way as u32), "N={n_ways} key={key}");
                }
            }
        }
    }

    #[test]
    fn tag_is_never_zero() {
        let fam = tag_fam(2, 10);
        for key in 1u32..200_000 {
            assert_ne!(fam.tag(key), 0);
        }
        assert_ne!(fam.tag(0), 0);
    }

    #[test]
    fn tag_dispersed_ways_differ() {
        let fam = tag_fam(4, 12);
        for pair in [(0u32, 1u32), (1, 2), (2, 3)] {
            let disagreements = (1u32..1000)
                .filter(|&k| fam.bucket(k, pair.0) != fam.bucket(k, pair.1))
                .count();
            assert!(
                disagreements > 900,
                "ways {pair:?} too correlated: {disagreements}"
            );
        }
    }

    #[test]
    fn tag_dispersed_distribution_roughly_uniform() {
        // The dispersed ways must stay uniform too, not just way 0.
        let fam = tag_fam(2, 6);
        let mut counts = [[0usize; 64]; 2];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..64_000 {
            let k: u32 = rand::Rng::gen(&mut rng);
            counts[0][fam.bucket(k, 0)] += 1;
            counts[1][fam.bucket(k, 1)] += 1;
        }
        for (way, way_counts) in counts.iter().enumerate() {
            let (min, max) = (
                way_counts.iter().min().unwrap(),
                way_counts.iter().max().unwrap(),
            );
            assert!(
                *min > 700 && *max < 1300,
                "way {way} skewed: min={min} max={max}"
            );
        }
    }

    #[test]
    fn partner_bucket_is_an_involution() {
        let fam = tag_fam(2, 10);
        let mut out = [0usize; crate::MAX_WAYS_USIZE];
        for key in 1u32..20_000 {
            let tag = fam.tag(key);
            let b = fam.buckets(key, &mut out);
            assert_eq!(fam.partner_bucket(b[0], tag), b[1], "key {key}");
            assert_eq!(fam.partner_bucket(b[1], tag), b[0], "key {key}");
        }
    }

    #[test]
    fn relocation_buckets_exclude_current() {
        for n_ways in [2u32, 3, 4] {
            let fam = tag_fam(n_ways, 8);
            let mut all = [0usize; crate::MAX_WAYS_USIZE];
            let mut rel = [0usize; crate::MAX_WAYS_USIZE];
            for key in 1u32..5_000 {
                let buckets: Vec<usize> = fam.buckets(key, &mut all).to_vec();
                for &cur in &buckets {
                    let alts = fam.relocation_buckets(key, cur, &mut rel);
                    assert!(!alts.contains(&cur), "N={n_ways} key={key}");
                    for &a in alts {
                        assert!(buckets.contains(&a), "N={n_ways} key={key}");
                    }
                    // Every non-current candidate bucket is offered.
                    for &b in &buckets {
                        if b != cur {
                            assert!(alts.contains(&b), "N={n_ways} key={key}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tag_dispersed_u16_and_u64() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x7a7);
        let f16: HashFamily<u16> = HashFamily::tag_dispersed(2, 10, &mut rng);
        for k in 1u16..=u16::MAX {
            assert!(f16.bucket(k, 1) < 1024);
            assert_ne!(f16.tag(k), 0);
        }
        let f64: HashFamily<u64> = HashFamily::tag_dispersed(3, 20, &mut rng);
        for k in 1u64..5_000 {
            let b0 = f64.bucket(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), 0);
            let b2 = f64.bucket(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), 2);
            assert!(b0 < (1 << 20) && b2 < (1 << 20));
        }
    }
}
