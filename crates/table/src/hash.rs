//! The multiply-shift hash family used for N-way cuckoo hashing.
//!
//! Each way *i* hashes a key `k` as `(k ⊙ aᵢ) >> (BITS − log₂ buckets)` with
//! a fixed random odd multiplier `aᵢ` (Dietzfelbinger et al.'s
//! multiply-shift scheme). Two properties matter here:
//!
//! 1. It is a single multiply + shift — cheap enough that the paper's
//!    horizontal template computes all `N` buckets per key up front
//!    (`calc_N_hash_buckets`, Algorithm 1 line 15).
//! 2. Both operations exist as per-lane vector instructions, which is what
//!    makes the vertical template's in-vector `vec_calc_hash`
//!    (Algorithm 2 line 16) possible. The SIMD kernels read
//!    [`HashFamily::multiplier`] and [`HashFamily::shift`] and replicate the
//!    exact computation with `mullo` + `shr`.

use rand::Rng;
use simdht_simd::Lane;

/// A family of up to [`crate::Layout::MAX_WAYS`] multiply-shift hash
/// functions over lane type `K`.
///
/// # Examples
///
/// ```
/// use simdht_table::HashFamily;
///
/// let family: HashFamily<u32> = HashFamily::deterministic(2, 10); // 1024 buckets
/// let b0 = family.bucket(12345, 0);
/// let b1 = family.bucket(12345, 1);
/// assert!(b0 < 1024 && b1 < 1024);
/// // Same key, same way, same bucket — always.
/// assert_eq!(b0, family.bucket(12345, 0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashFamily<K> {
    multipliers: Vec<K>,
    log2_buckets: u32,
    shift: u32,
}

impl<K: Lane> HashFamily<K> {
    /// Create a family of `n_ways` hash functions over `2^log2_buckets`
    /// buckets, drawing multipliers from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `log2_buckets >= K::BITS` (the bucket index must come from
    /// the top bits of a `K`-wide product) or if `n_ways == 0`.
    pub fn new(n_ways: u32, log2_buckets: u32, rng: &mut impl Rng) -> Self {
        assert!(n_ways >= 1, "need at least one hash function");
        assert!(
            log2_buckets < K::BITS,
            "log2_buckets {log2_buckets} must be < key bits {}",
            K::BITS
        );
        let multipliers = (0..n_ways)
            .map(|_| K::from_u64(rng.gen::<u64>() | 1)) // odd multiplier
            .collect();
        HashFamily {
            multipliers,
            log2_buckets,
            shift: K::BITS - log2_buckets,
        }
    }

    /// Create a family with a fixed internal seed (reproducible runs).
    pub fn deterministic(n_ways: u32, log2_buckets: u32) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51_3d_47_b3_9c_2e_11);
        Self::new(n_ways, log2_buckets, &mut rng)
    }

    /// Number of ways (hash functions).
    pub fn n_ways(&self) -> u32 {
        self.multipliers.len() as u32
    }

    /// `log₂` of the bucket count.
    pub fn log2_buckets(&self) -> u32 {
        self.log2_buckets
    }

    /// Number of buckets (`2^log2_buckets`).
    pub fn num_buckets(&self) -> usize {
        1usize << self.log2_buckets
    }

    /// The right-shift amount (`K::BITS − log2_buckets`), needed by vector
    /// kernels replicating the hash in-register.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// The odd multiplier for `way`, needed by vector kernels.
    ///
    /// # Panics
    ///
    /// Panics if `way >= n_ways`.
    pub fn multiplier(&self, way: u32) -> K {
        self.multipliers[way as usize]
    }

    /// The bucket index of `key` under hash function `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= n_ways`.
    #[inline(always)]
    pub fn bucket(&self, key: K, way: u32) -> usize {
        let h = key.wrapping_mul(self.multipliers[way as usize]);
        if self.shift >= K::BITS {
            0
        } else {
            h.shr(self.shift).to_u64() as usize
        }
    }

    /// All candidate buckets of `key`, in way order, written into `out`.
    /// Returns the filled prefix.
    #[inline(always)]
    pub fn buckets<'a>(&self, key: K, out: &'a mut [usize; crate::MAX_WAYS_USIZE]) -> &'a [usize] {
        let n = self.multipliers.len();
        for (way, slot) in out.iter_mut().enumerate().take(n) {
            *slot = self.bucket(key, way as u32);
        }
        &out[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn buckets_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let fam: HashFamily<u32> = HashFamily::new(3, 8, &mut rng);
        assert_eq!(fam.num_buckets(), 256);
        for key in 1u32..10_000 {
            for way in 0..3 {
                assert!(fam.bucket(key, way) < 256);
            }
        }
    }

    #[test]
    fn ways_differ() {
        let fam: HashFamily<u32> = HashFamily::deterministic(4, 12);
        // The ways should disagree for most keys.
        let disagreements = (1u32..1000)
            .filter(|&k| fam.bucket(k, 0) != fam.bucket(k, 1))
            .count();
        assert!(disagreements > 900, "ways too correlated: {disagreements}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let fam: HashFamily<u32> = HashFamily::deterministic(2, 6);
        let mut counts = [0usize; 64];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..64_000 {
            let k: u32 = rand::Rng::gen(&mut rng);
            counts[fam.bucket(k, 0)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // mean 1000 per bucket; allow generous slack.
        assert!(*min > 700 && *max < 1300, "skewed: min={min} max={max}");
    }

    #[test]
    fn u16_and_u64_families() {
        let f16: HashFamily<u16> = HashFamily::deterministic(2, 10);
        assert!(f16.bucket(1234u16, 1) < 1024);
        let f64: HashFamily<u64> = HashFamily::deterministic(3, 20);
        assert!(f64.bucket(0xDEAD_BEEF_u64, 2) < (1 << 20));
    }

    #[test]
    fn shift_matches_scalar_reimplementation() {
        let fam: HashFamily<u32> = HashFamily::deterministic(2, 9);
        for key in [1u32, 99, 12345, u32::MAX] {
            for way in 0..2 {
                let manual = (key.wrapping_mul(fam.multiplier(way))) >> fam.shift();
                assert_eq!(fam.bucket(key, way), manual as usize);
            }
        }
    }

    #[test]
    fn buckets_helper_fills_prefix() {
        let fam: HashFamily<u32> = HashFamily::deterministic(3, 8);
        let mut out = [0usize; crate::MAX_WAYS_USIZE];
        let filled = fam.buckets(42, &mut out);
        assert_eq!(filled.len(), 3);
        assert_eq!(filled[1], fam.bucket(42, 1));
    }
}
