//! `(N, m)` cuckoo hash-table layouts — the paper's *memory layout* design
//! dimension (§III-A.1).

use std::fmt;

/// How a bucket's `m` slots are arranged in memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Arrangement {
    /// `[k₀ v₀ k₁ v₁ …]` — key/value pairs adjacent, as drawn in the paper's
    /// Fig. 3. A horizontal probe loads the whole bucket and splits keys
    /// from values with `vec_shuffle_and_blend`; a vertical probe over `m=1`
    /// can fetch a pair with one wide gather ("fewer wider gathers", §IV-C).
    ///
    /// Requires key and value lanes of the same width.
    #[default]
    Interleaved,
    /// `[k₀ … k_{m−1}][v₀ … v_{m−1}]` — keys contiguous per bucket. A
    /// horizontal probe loads only the key block (so a `(2,8)` bucket of
    /// 16-bit keys fits two buckets of keys in one 256-bit vector — the
    /// Case Study ② configuration); values are fetched after a match.
    /// Supports mixed key/value widths.
    Split,
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrangement::Interleaved => write!(f, "interleaved"),
            Arrangement::Split => write!(f, "split"),
        }
    }
}

/// An `(N, m)` cuckoo hash-table layout.
///
/// * `n_ways` — how many hash functions (candidate buckets) each key has.
/// * `slots_per_bucket` — bucket set-associativity; `1` means the
///   non-bucketized "N-way cuckoo HT", `>1` a BCHT (paper §II-A).
///
/// # Examples
///
/// ```
/// use simdht_table::{Arrangement, Layout};
///
/// let memc3_like = Layout::bcht(2, 4);            // (2,4) BCHT
/// assert!(memc3_like.is_bucketized());
/// let nway = Layout::n_way(3);                    // 3-way cuckoo HT
/// assert_eq!(nway.slots_per_bucket(), 1);
/// let mixed = Layout::bcht(2, 8).with_arrangement(Arrangement::Split);
/// assert_eq!(mixed.to_string(), "(2,8) BCHT [split]");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Layout {
    n_ways: u32,
    slots_per_bucket: u32,
    arrangement: Arrangement,
}

impl Layout {
    /// Maximum supported number of hash functions.
    pub const MAX_WAYS: u32 = 8;
    /// Maximum supported slots per bucket.
    pub const MAX_SLOTS: u32 = 16;

    /// A bucketized `(n, m)` cuckoo layout.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `2..=MAX_WAYS`, if `m` is not a power of two
    /// in `1..=MAX_SLOTS`.
    pub fn bcht(n: u32, m: u32) -> Self {
        assert!(
            (2..=Self::MAX_WAYS).contains(&n),
            "n_ways out of range: {n}"
        );
        assert!(
            m.is_power_of_two() && (1..=Self::MAX_SLOTS).contains(&m),
            "slots_per_bucket must be a power of two in 1..={}: {m}",
            Self::MAX_SLOTS
        );
        Layout {
            n_ways: n,
            slots_per_bucket: m,
            arrangement: Arrangement::Interleaved,
        }
    }

    /// A non-bucketized `n`-way cuckoo layout (`m = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `2..=MAX_WAYS`.
    pub fn n_way(n: u32) -> Self {
        Self::bcht(n, 1)
    }

    /// Same layout with a different bucket arrangement.
    pub fn with_arrangement(mut self, arrangement: Arrangement) -> Self {
        self.arrangement = arrangement;
        self
    }

    /// Number of hash functions `N`.
    pub fn n_ways(&self) -> u32 {
        self.n_ways
    }

    /// Slots per bucket `m`.
    pub fn slots_per_bucket(&self) -> u32 {
        self.slots_per_bucket
    }

    /// Bucket arrangement.
    pub fn arrangement(&self) -> Arrangement {
        self.arrangement
    }

    /// `true` when `m > 1` (a BCHT), `false` for an N-way cuckoo HT.
    pub fn is_bucketized(&self) -> bool {
        self.slots_per_bucket > 1
    }

    /// Size in bytes of one bucket for the given key/value widths (bits).
    pub fn bucket_bytes(&self, key_bits: u32, val_bits: u32) -> usize {
        self.slots_per_bucket as usize * ((key_bits + val_bits) as usize / 8)
    }

    /// The largest power-of-two bucket count whose storage fits in
    /// `table_bytes`, or `None` if not even one bucket fits.
    ///
    /// The paper sizes tables in bytes (1 MB HT, 16 MB HT, …); bucket counts
    /// must be powers of two for mask-based multiply-shift indexing.
    pub fn buckets_for_bytes(
        &self,
        table_bytes: usize,
        key_bits: u32,
        val_bits: u32,
    ) -> Option<usize> {
        let per_bucket = self.bucket_bytes(key_bits, val_bits);
        let max = table_bytes / per_bucket;
        if max == 0 {
            None
        } else {
            Some(prev_power_of_two(max))
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bucketized() {
            write!(
                f,
                "({},{}) BCHT [{}]",
                self.n_ways, self.slots_per_bucket, self.arrangement
            )
        } else {
            write!(f, "{}-way cuckoo HT", self.n_ways)
        }
    }
}

/// Largest power of two `<= x` (requires `x >= 1`).
pub(crate) fn prev_power_of_two(x: usize) -> usize {
    debug_assert!(x >= 1);
    1 << (usize::BITS - 1 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let l = Layout::bcht(2, 4);
        assert_eq!(l.n_ways(), 2);
        assert_eq!(l.slots_per_bucket(), 4);
        assert!(l.is_bucketized());
        assert_eq!(l.arrangement(), Arrangement::Interleaved);

        let n = Layout::n_way(4);
        assert_eq!(n.slots_per_bucket(), 1);
        assert!(!n.is_bucketized());
    }

    #[test]
    #[should_panic(expected = "n_ways out of range")]
    fn rejects_one_way() {
        Layout::n_way(1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_slots() {
        Layout::bcht(2, 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Layout::bcht(2, 4).to_string(), "(2,4) BCHT [interleaved]");
        assert_eq!(Layout::n_way(3).to_string(), "3-way cuckoo HT");
        assert_eq!(
            Layout::bcht(3, 8)
                .with_arrangement(Arrangement::Split)
                .to_string(),
            "(3,8) BCHT [split]"
        );
    }

    #[test]
    fn bucket_bytes_math() {
        // (2,4) with 32-bit keys and values: 4 slots * 8 B = 32 B.
        assert_eq!(Layout::bcht(2, 4).bucket_bytes(32, 32), 32);
        // (2,8) with (16,32): 8 * 6 B = 48 B.
        assert_eq!(Layout::bcht(2, 8).bucket_bytes(16, 32), 48);
    }

    #[test]
    fn buckets_for_bytes_power_of_two() {
        let l = Layout::bcht(2, 4);
        // 1 MiB / 32 B = 32768 buckets, already a power of two.
        assert_eq!(l.buckets_for_bytes(1 << 20, 32, 32), Some(32768));
        // 48-B buckets: (1 MiB / 48) = 21845 -> 16384.
        let mixed = Layout::bcht(2, 8);
        assert_eq!(mixed.buckets_for_bytes(1 << 20, 16, 32), Some(16384));
        // Too small for one bucket.
        assert_eq!(l.buckets_for_bytes(16, 32, 32), None);
    }

    #[test]
    fn prev_pow2() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(65535), 32768);
        assert_eq!(prev_power_of_two(65536), 65536);
    }
}
