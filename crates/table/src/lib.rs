//! # simdht-table
//!
//! `(N, m)` cuckoo hash tables for **SimdHT-Bench** (IISWC 2019
//! reproduction): the memory-layout design dimension of the paper (§III-A).
//!
//! * [`Layout`] describes the `(N, m)` geometry and the bucket
//!   [`Arrangement`] (interleaved `[k v k v …]` as in the paper's Fig. 3, or
//!   split `[k…k][v…v]`).
//! * [`CuckooTable`] stores fixed-width hash keys/payloads with BFS-based
//!   cuckoo insertion and a scalar probe; its raw slot arrays are exposed to
//!   the SIMD lookup kernels in `simdht-core`.
//! * [`HashFamily`] is the multiply-shift family shared verbatim between the
//!   scalar and in-vector hash computations.
//! * [`loadfactor`] measures achievable load factors empirically
//!   (regenerates the paper's Fig. 2).
//! * [`sharded`] is a sharded reader-writer-locked variant for the mixed
//!   read/write future-work studies.
//! * [`swiss`] is a SwissTable-style SIMD-friendly open-addressing table —
//!   the "beyond cuckoo hashing" extension the paper's conclusion names as
//!   future work.
//!
//! ## Example
//!
//! ```
//! use simdht_table::{CuckooTable, Layout};
//!
//! // A (2,4) bucketized cuckoo table — the MemC3 layout.
//! let mut table: CuckooTable<u32, u32> = CuckooTable::with_bytes(Layout::bcht(2, 4), 64 * 1024)?;
//! for key in 1..=1000u32 {
//!     table.insert(key, key * 2)?;
//! }
//! assert_eq!(table.get(500), Some(1000));
//! assert!(table.load_factor() < 0.2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod aligned;
mod hash;
mod layout;
pub mod loadfactor;
pub mod sharded;
pub mod swiss;
mod table;

pub use hash::HashFamily;
pub use layout::{Arrangement, Layout};
pub use table::{CuckooTable, InsertError, InsertStats, TableError};

/// Upper bound on `N` as a `usize`, for stack-allocated bucket scratch.
pub const MAX_WAYS_USIZE: usize = Layout::MAX_WAYS as usize;
