//! Empirical maximum-load-factor measurement — regenerates the paper's
//! Fig. 2 ("Load Factor vs. N-way Hashing vs. BCHT") from first principles
//! instead of quoting Erlingsson et al.'s numbers.

use rand::Rng;
use rand::SeedableRng;
use simdht_simd::Lane;

use crate::{CuckooTable, InsertError, Layout};

/// Result of one max-load-factor measurement.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LoadFactorSample {
    /// Items successfully inserted before the first failure.
    pub inserted: usize,
    /// Total slot capacity.
    pub capacity: usize,
    /// `inserted / capacity`.
    pub load_factor: f64,
}

/// Fill a fresh table with uniformly random distinct keys until the first
/// insertion failure; return the achieved load factor.
///
/// # Panics
///
/// Panics if table construction fails for the given layout/size (e.g. an
/// interleaved layout with mismatched key/value widths).
pub fn measure_max_load_factor<K: Lane, V: Lane>(
    layout: Layout,
    log2_buckets: u32,
    seed: u64,
) -> LoadFactorSample {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut table: CuckooTable<K, V> =
        CuckooTable::with_rng(layout, log2_buckets, &mut rng).expect("table construction");
    let mut inserted = 0usize;
    loop {
        // Draw a fresh non-sentinel key; duplicates merely update in place
        // (they don't consume a slot), so skip them for an exact count.
        let key = loop {
            let k = K::from_u64(rng.gen::<u64>());
            if k != K::EMPTY && !table.contains(k) {
                break k;
            }
        };
        match table.insert(key, V::from_u64(inserted as u64)) {
            Ok(()) => inserted += 1,
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("unexpected insert error: {e}"),
        }
    }
    LoadFactorSample {
        inserted,
        capacity: table.capacity(),
        load_factor: inserted as f64 / table.capacity() as f64,
    }
}

/// Average [`measure_max_load_factor`] over `trials` independent seeds.
pub fn average_max_load_factor<K: Lane, V: Lane>(
    layout: Layout,
    log2_buckets: u32,
    trials: u32,
) -> f64 {
    (0..trials)
        .map(|t| {
            measure_max_load_factor::<K, V>(layout, log2_buckets, 0xF162 + u64::from(t)).load_factor
        })
        .sum::<f64>()
        / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Expected max load factors from the cuckoo-hashing literature
    // (paper Fig. 2): 2-way ~0.5, 3-way ~0.91, 4-way ~0.97,
    // (2,2) ~0.89, (2,4) ~0.93 ("increase to 93 %"), (2,8) ~0.98.
    #[test]
    fn two_way_near_half() {
        let lf = average_max_load_factor::<u32, u32>(Layout::n_way(2), 10, 3);
        assert!((0.40..0.60).contains(&lf), "2-way LF {lf:.3}");
    }

    #[test]
    fn three_way_above_ninety() {
        let lf = average_max_load_factor::<u32, u32>(Layout::n_way(3), 10, 3);
        assert!(lf > 0.88, "3-way LF {lf:.3}");
    }

    #[test]
    fn four_way_above_ninety_five() {
        let lf = average_max_load_factor::<u32, u32>(Layout::n_way(4), 10, 3);
        assert!(lf > 0.95, "4-way LF {lf:.3}");
    }

    #[test]
    fn bcht_2_4_above_ninety() {
        let lf = average_max_load_factor::<u32, u32>(Layout::bcht(2, 4), 8, 3);
        assert!(lf > 0.90, "(2,4) LF {lf:.3}");
    }

    #[test]
    fn bcht_2_8_above_ninety_five() {
        let lf = average_max_load_factor::<u32, u32>(Layout::bcht(2, 8), 8, 3);
        assert!(lf > 0.95, "(2,8) LF {lf:.3}");
    }

    #[test]
    fn monotone_in_associativity() {
        let lf1 = average_max_load_factor::<u32, u32>(Layout::n_way(2), 9, 2);
        let lf2 = average_max_load_factor::<u32, u32>(Layout::bcht(2, 2), 8, 2);
        let lf4 = average_max_load_factor::<u32, u32>(Layout::bcht(2, 4), 7, 2);
        assert!(lf1 < lf2 && lf2 < lf4, "{lf1:.3} {lf2:.3} {lf4:.3}");
    }
}
