//! A sharded, reader-writer-locked cuckoo table for **mixed read/write
//! workloads** — the paper's first named piece of future work ("study and
//! model mixed workloads that involve concurrent reads and updates to the
//! SIMD-aware hash table").
//!
//! Keys are routed to one of `S` shards by an independent multiply-shift
//! hash; each shard is a plain [`CuckooTable`] behind an `RwLock`, so
//! batched SIMD lookups run under shared locks while updates serialize only
//! within their shard (the standard memcached scaling recipe). The mixed-
//! workload engine in `simdht-core` partitions each lookup batch by shard
//! and runs the vector kernels per shard.

use std::sync::RwLock;

use rand::Rng;
use simdht_simd::Lane;

use crate::{CuckooTable, InsertError, Layout, TableError};

/// A concurrently accessible cuckoo table, split into power-of-two shards.
///
/// # Examples
///
/// ```
/// use simdht_table::{sharded::ShardedTable, Layout};
///
/// let table: ShardedTable<u32, u32> = ShardedTable::new(Layout::bcht(2, 4), 8, 4)?;
/// table.insert(11, 110)?;
/// assert_eq!(table.get(11), Some(110));
/// assert_eq!(table.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardedTable<K, V> {
    shards: Vec<RwLock<CuckooTable<K, V>>>,
    shard_mul: K,
    shard_shift: u32,
    shard_mask: usize,
}

impl<K: Lane, V: Lane> ShardedTable<K, V> {
    /// Create `n_shards` shards (rounded up to a power of two), each with
    /// `2^log2_buckets_per_shard` buckets of the given layout.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError`] from shard construction.
    pub fn new(
        layout: Layout,
        log2_buckets_per_shard: u32,
        n_shards: usize,
    ) -> Result<Self, TableError> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5AA6_D001);
        let n_shards = n_shards.max(1).next_power_of_two();
        let shards = (0..n_shards)
            .map(|_| {
                Ok(RwLock::new(CuckooTable::with_rng(
                    layout,
                    log2_buckets_per_shard,
                    &mut rng,
                )?))
            })
            .collect::<Result<Vec<_>, TableError>>()?;
        let log2_shards = n_shards.trailing_zeros();
        Ok(ShardedTable {
            shards,
            shard_mul: K::from_u64(rng.gen::<u64>() | 1),
            shard_shift: K::BITS.saturating_sub(log2_shards).clamp(1, K::BITS - 1),
            shard_mask: n_shards - 1,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `(mul, shift, mask)` multiply-shift routing parameters, so
    /// other layers (e.g. the sharded KVS store) can prove they agree on
    /// placement for the same parameters.
    pub fn shard_params(&self) -> (K, u32, usize) {
        (self.shard_mul, self.shard_shift, self.shard_mask)
    }

    /// The shard index a key routes to.
    #[inline(always)]
    pub fn shard_of(&self, key: K) -> usize {
        key.wrapping_mul(self.shard_mul)
            .shr(self.shard_shift)
            .to_u64() as usize
            & self.shard_mask
    }

    /// Shared access to one shard's table (for batched vector kernels).
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned or `shard` is out of range.
    pub fn read_shard(&self, shard: usize) -> std::sync::RwLockReadGuard<'_, CuckooTable<K, V>> {
        self.shards[shard].read().expect("shard lock poisoned")
    }

    /// Insert or update `key → value` in its shard.
    ///
    /// # Errors
    ///
    /// [`InsertError`] from the shard's cuckoo insert.
    pub fn insert(&self, key: K, value: V) -> Result<(), InsertError> {
        let s = self.shard_of(key);
        self.shards[s]
            .write()
            .expect("shard lock poisoned")
            .insert(key, value)
    }

    /// Look up a single key.
    pub fn get(&self, key: K) -> Option<V> {
        let s = self.shard_of(key);
        self.shards[s].read().expect("shard lock poisoned").get(key)
    }

    /// Remove a key, returning its payload.
    pub fn remove(&self, key: K) -> Option<V> {
        let s = self.shard_of(key);
        self.shards[s]
            .write()
            .expect("shard lock poisoned")
            .remove(key)
    }

    /// Total items across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// `true` when all shards are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").capacity())
            .sum()
    }

    /// Partition a batch of queries by shard: returns, per shard, the
    /// (original index, key) pairs routed to it. Buffers are reused.
    pub fn partition_batch(&self, queries: &[K], per_shard: &mut Vec<Vec<(u32, K)>>) {
        per_shard.resize_with(self.shards.len(), Vec::new);
        for bucket in per_shard.iter_mut() {
            bucket.clear();
        }
        for (i, &q) in queries.iter().enumerate() {
            per_shard[self.shard_of(q)].push((i as u32, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn routes_and_roundtrips() {
        let t: ShardedTable<u32, u32> = ShardedTable::new(Layout::bcht(2, 4), 8, 4).unwrap();
        for i in 1..=2000u32 {
            t.insert(i, i + 5).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for i in (1..=2000u32).step_by(13) {
            assert_eq!(t.get(i), Some(i + 5));
        }
        assert_eq!(t.get(50_000), None);
    }

    #[test]
    fn shards_are_balanced() {
        let t: ShardedTable<u32, u32> = ShardedTable::new(Layout::bcht(2, 4), 8, 8).unwrap();
        let mut counts = vec![0usize; 8];
        for i in 1..=80_000u32 {
            counts[t.shard_of(i)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            (*max as f64) / (*min as f64) < 1.2,
            "shard imbalance: {counts:?}"
        );
    }

    #[test]
    fn partition_batch_covers_all() {
        let t: ShardedTable<u32, u32> = ShardedTable::new(Layout::n_way(3), 6, 4).unwrap();
        let queries: Vec<u32> = (1..=500).collect();
        let mut parts = Vec::new();
        t.partition_batch(&queries, &mut parts);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        for (s, part) in parts.iter().enumerate() {
            for &(i, k) in part {
                assert_eq!(queries[i as usize], k);
                assert_eq!(t.shard_of(k), s);
            }
        }
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let t: ShardedTable<u32, u32> = ShardedTable::new(Layout::n_way(2), 6, 1).unwrap();
        t.insert(9, 90).unwrap();
        assert_eq!(t.shard_of(9), 0);
        assert_eq!(t.get(9), Some(90));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t: Arc<ShardedTable<u32, u32>> =
            Arc::new(ShardedTable::new(Layout::bcht(2, 4), 10, 8).unwrap());
        for i in 1..=10_000u32 {
            t.insert(i, i).unwrap();
        }
        std::thread::scope(|s| {
            for r in 0..3 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for i in (1..=10_000u32).step_by(3 + r) {
                        assert_eq!(t.get(i), Some(i));
                    }
                });
            }
            let t2 = Arc::clone(&t);
            s.spawn(move || {
                for i in 10_001..=12_000u32 {
                    t2.insert(i, i).unwrap();
                }
            });
        });
        assert_eq!(t.len(), 12_000);
    }

    #[test]
    fn remove_works_across_shards() {
        let t: ShardedTable<u64, u64> = ShardedTable::new(Layout::n_way(3), 9, 4).unwrap();
        for i in 1..=1000u64 {
            t.insert(i << 7, i).unwrap();
        }
        for i in (1..=1000u64).step_by(2) {
            assert_eq!(t.remove(i << 7), Some(i));
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(2 << 7), Some(2));
        assert_eq!(t.get(1 << 7), None);
    }
}
