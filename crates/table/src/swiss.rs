//! A SwissTable-style SIMD-friendly open-addressing hash table — the
//! "other SIMD-friendly hash table designs beyond cuckoo hashing" the
//! paper's conclusion names as future work.
//!
//! Layout (as in Google's SwissTable / Rust's hashbrown): a parallel
//! *control-byte* array holds one byte per slot — `0x80` for empty, `0xFE`
//! for a tombstone, else the low 7 bits of the key's secondary hash (`h2`).
//! A probe loads a **group** of 16 control bytes and compares all of them
//! against the sought `h2` in one SSE2 instruction, then verifies full keys
//! only at matching positions. This is *horizontal* SIMD in the paper's
//! taxonomy — one key vs. many candidate slots — but over an open-addressing
//! layout with unbounded (triangular) probing instead of N candidate
//! buckets.
//!
//! The contrast with cuckoo designs is exercised by the `ext-swiss`
//! experiment: SwissTable probes one contiguous group per step (fewer cache
//! lines on hits at moderate load factors) but has no constant worst-case
//! lookup bound.

use rand::Rng;
use simdht_simd::Lane;

/// Control byte: slot empty.
const EMPTY: u8 = 0x80;
/// Control byte: slot deleted (tombstone).
const DELETED: u8 = 0xFE;
/// Slots per control group (one 128-bit vector of bytes).
pub const GROUP: usize = 16;

/// Match mask over one 16-byte control group.
mod group {
    use super::GROUP;

    /// Load a control group and answer byte-match queries.
    ///
    /// Uses SSE2 byte compares when compiled for x86-64, with a portable
    /// fallback elsewhere — the same dual-path structure as the main
    /// `Vector` backends.
    #[derive(Copy, Clone)]
    pub struct Group {
        #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
        raw: core::arch::x86_64::__m128i,
        #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
        raw: [u8; GROUP],
    }

    impl Group {
        /// Load 16 control bytes.
        ///
        /// # Panics
        ///
        /// Panics if `ctrl.len() < GROUP`.
        #[inline(always)]
        pub fn load(ctrl: &[u8]) -> Self {
            assert!(ctrl.len() >= GROUP);
            #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
            // SAFETY: length checked; unaligned load.
            unsafe {
                Group {
                    raw: core::arch::x86_64::_mm_loadu_si128(ctrl.as_ptr().cast()),
                }
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
            {
                let mut raw = [0u8; GROUP];
                raw.copy_from_slice(&ctrl[..GROUP]);
                Group { raw }
            }
        }

        /// Bitmask of positions whose control byte equals `byte`.
        #[inline(always)]
        pub fn match_byte(self, byte: u8) -> u16 {
            #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
            // SAFETY: sse2 guaranteed by the cfg gate.
            unsafe {
                use core::arch::x86_64::*;
                let eq = _mm_cmpeq_epi8(self.raw, _mm_set1_epi8(byte as i8));
                _mm_movemask_epi8(eq) as u16
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
            {
                let mut m = 0u16;
                for (i, &b) in self.raw.iter().enumerate() {
                    m |= u16::from(b == byte) << i;
                }
                m
            }
        }

        /// Bitmask of empty positions.
        #[inline(always)]
        pub fn match_empty(self) -> u16 {
            self.match_byte(super::EMPTY)
        }

        /// Bitmask of positions free for insertion (empty or tombstone).
        #[inline(always)]
        pub fn match_free(self) -> u16 {
            self.match_byte(super::EMPTY) | self.match_byte(super::DELETED)
        }
    }
}

pub use group::Group;

/// A SwissTable-style open-addressing hash table over fixed-width hash keys
/// and payloads (the same `(K, V)` contract as [`crate::CuckooTable`]).
///
/// # Examples
///
/// ```
/// use simdht_table::swiss::SwissTable;
///
/// let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
/// t.insert(7, 700)?;
/// assert_eq!(t.get(7), Some(700));
/// assert_eq!(t.remove(7), Some(700));
/// assert_eq!(t.get(7), None);
/// # Ok::<(), simdht_table::swiss::SwissFull>(())
/// ```
#[derive(Clone, Debug)]
pub struct SwissTable<K, V> {
    ctrl: Vec<u8>,
    keys: Vec<K>,
    vals: Vec<V>,
    group_mask: usize,
    group_shift: u32,
    len: usize,
    tombstones: usize,
    h1_mul: K,
    h2_mul: K,
    /// Insertion refuses to exceed this load factor (slots basis).
    max_lf: f64,
}

/// Error: the table reached its maximum load factor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SwissFull;

impl std::fmt::Display for SwissFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "swiss table reached its maximum load factor")
    }
}

impl std::error::Error for SwissFull {}

impl<K: Lane, V: Lane> SwissTable<K, V> {
    /// Create a table with `slots` capacity (rounded up to a power-of-two
    /// multiple of the group size). Default max load factor: 7/8.
    pub fn with_capacity_slots(slots: usize) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x51_77_15_5E_D0);
        Self::with_rng(slots, &mut rng)
    }

    /// As [`SwissTable::with_capacity_slots`] with explicit hash randomness.
    pub fn with_rng(slots: usize, rng: &mut impl Rng) -> Self {
        let groups = (slots.max(GROUP) / GROUP).next_power_of_two();
        let n = groups * GROUP;
        // Take the *top* bits of the multiply — that is where multiply-shift
        // hashing concentrates its quality.
        let log2_groups = groups.trailing_zeros();
        let group_shift = K::BITS.saturating_sub(log2_groups).clamp(1, K::BITS - 1);
        SwissTable {
            ctrl: vec![EMPTY; n],
            keys: vec![K::EMPTY; n],
            vals: vec![V::EMPTY; n],
            group_mask: groups - 1,
            group_shift,
            len: 0,
            tombstones: 0,
            h1_mul: K::from_u64(rng.gen::<u64>() | 1),
            h2_mul: K::from_u64(rng.gen::<u64>() | 1),
            max_lf: 7.0 / 8.0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.ctrl.len()
    }

    /// Stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current load factor (including tombstones, which occupy probe space).
    pub fn load_factor(&self) -> f64 {
        (self.len + self.tombstones) as f64 / self.capacity() as f64
    }

    #[inline(always)]
    fn h1_group(&self, key: K) -> usize {
        // Multiply-shift, top bits → starting group.
        let h = key.wrapping_mul(self.h1_mul).shr(self.group_shift);
        h.to_u64() as usize & self.group_mask
    }

    #[inline(always)]
    fn h2(&self, key: K) -> u8 {
        // An independent multiply; low 7 bits, never colliding with
        // EMPTY/DELETED (both have the high bit set).
        (key.wrapping_mul(self.h2_mul).to_u64() & 0x7F) as u8
    }

    /// Triangular (quadratic) group probe sequence, as in hashbrown:
    /// visits every group exactly once for power-of-two group counts.
    #[inline(always)]
    fn probe(&self, key: K) -> ProbeSeq {
        ProbeSeq {
            group: self.h1_group(key),
            stride: 0,
            mask: self.group_mask,
        }
    }

    /// Look up `key` — one SSE byte-compare per probed group.
    #[inline]
    pub fn get(&self, key: K) -> Option<V> {
        if key == K::EMPTY {
            return None;
        }
        let tag = self.h2(key);
        let mut seq = self.probe(key);
        loop {
            let g = seq.next_group();
            let base = g * GROUP;
            let group = Group::load(&self.ctrl[base..]);
            let mut m = group.match_byte(tag);
            while m != 0 {
                let slot = base + m.trailing_zeros() as usize;
                if self.keys[slot] == key {
                    return Some(self.vals[slot]);
                }
                m &= m - 1;
            }
            if group.match_empty() != 0 {
                return None; // an empty slot terminates the probe chain
            }
        }
    }

    /// Batched lookup under the benchmark's common contract: `out[i]` gets
    /// the payload or the empty sentinel; returns the hit count.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != queries.len()`.
    pub fn get_batch(&self, queries: &[K], out: &mut [V]) -> usize {
        assert_eq!(queries.len(), out.len(), "output slice length mismatch");
        let mut hits = 0;
        for (q, o) in queries.iter().zip(out.iter_mut()) {
            match self.get(*q) {
                Some(v) => {
                    *o = v;
                    hits += 1;
                }
                None => *o = V::EMPTY,
            }
        }
        hits
    }

    /// Insert or update.
    ///
    /// # Errors
    ///
    /// [`SwissFull`] when the max load factor would be exceeded.
    pub fn insert(&mut self, key: K, value: V) -> Result<(), SwissFull> {
        assert_ne!(key, K::EMPTY, "key 0 is the empty sentinel");
        let tag = self.h2(key);
        // Pass 1: update in place if present.
        if let Some(slot) = self.find_slot(key, tag) {
            self.vals[slot] = value;
            return Ok(());
        }
        if (self.len + self.tombstones + 1) as f64 > self.capacity() as f64 * self.max_lf {
            return Err(SwissFull);
        }
        // Pass 2: first free slot on the probe chain.
        let mut seq = self.probe(key);
        loop {
            let g = seq.next_group();
            let base = g * GROUP;
            let free = Group::load(&self.ctrl[base..]).match_free();
            if free != 0 {
                let slot = base + free.trailing_zeros() as usize;
                if self.ctrl[slot] == DELETED {
                    self.tombstones -= 1;
                }
                self.ctrl[slot] = tag;
                self.keys[slot] = key;
                self.vals[slot] = value;
                self.len += 1;
                return Ok(());
            }
        }
    }

    /// Remove `key`, returning its payload.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let tag = self.h2(key);
        let slot = self.find_slot(key, tag)?;
        let group_base = slot & !(GROUP - 1);
        let v = self.vals[slot];
        // If the group still has an empty slot, the chain never extended
        // past it — a plain EMPTY suffices; otherwise leave a tombstone.
        if Group::load(&self.ctrl[group_base..]).match_empty() != 0 {
            self.ctrl[slot] = EMPTY;
        } else {
            self.ctrl[slot] = DELETED;
            self.tombstones += 1;
        }
        self.keys[slot] = K::EMPTY;
        self.vals[slot] = V::EMPTY;
        self.len -= 1;
        Some(v)
    }

    fn find_slot(&self, key: K, tag: u8) -> Option<usize> {
        let mut seq = self.probe(key);
        loop {
            let g = seq.next_group();
            let base = g * GROUP;
            let group = Group::load(&self.ctrl[base..]);
            let mut m = group.match_byte(tag);
            while m != 0 {
                let slot = base + m.trailing_zeros() as usize;
                if self.keys[slot] == key {
                    return Some(slot);
                }
                m &= m - 1;
            }
            if group.match_empty() != 0 {
                return None;
            }
        }
    }
}

struct ProbeSeq {
    group: usize,
    stride: usize,
    mask: usize,
}

impl ProbeSeq {
    #[inline(always)]
    fn next_group(&mut self) -> usize {
        let g = self.group;
        self.stride += 1;
        self.group = (self.group + self.stride) & self.mask;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 12);
        for i in 1..=3000u32 {
            t.insert(i, i + 9).unwrap();
        }
        for i in 1..=3000u32 {
            assert_eq!(t.get(i), Some(i + 9));
        }
        assert_eq!(t.get(99_999), None);
        assert_eq!(t.len(), 3000);
    }

    #[test]
    fn reaches_seven_eighths_load() {
        let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
        let mut n = 0u32;
        while t.insert(n.wrapping_mul(2_654_435_761).max(1), n).is_ok() {
            n += 1;
        }
        let lf = t.len() as f64 / t.capacity() as f64;
        assert!((0.86..0.89).contains(&lf), "LF {lf:.3}");
    }

    #[test]
    fn tombstones_keep_chains_intact() {
        let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(256);
        let keys: Vec<u32> = (1..=180).collect();
        for &k in &keys {
            t.insert(k, k * 2).unwrap();
        }
        // Remove every other key, then verify the rest still resolve.
        for &k in keys.iter().step_by(2) {
            assert_eq!(t.remove(k), Some(k * 2));
        }
        for &k in keys.iter().skip(1).step_by(2) {
            assert_eq!(t.get(k), Some(k * 2), "key {k} lost after deletions");
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(t.get(k), None);
        }
    }

    #[test]
    fn model_equivalence_with_churn() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
        let mut model: HashMap<u32, u32> = HashMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(1..400u32);
            match rng.gen_range(0..3) {
                0 => {
                    let v = rng.gen();
                    if t.insert(k, v).is_ok() {
                        model.insert(k, v);
                    }
                }
                1 => assert_eq!(t.remove(k), model.remove(&k)),
                _ => assert_eq!(t.get(k), model.get(&k).copied()),
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn batch_contract_matches_get() {
        let mut t: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
        for i in 1..=500u32 {
            t.insert(i * 3, i).unwrap();
        }
        let queries: Vec<u32> = (1..=700u32).map(|i| i * 3).collect();
        let mut out = vec![0u32; queries.len()];
        let hits = t.get_batch(&queries, &mut out);
        assert_eq!(hits, 500);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(out[i], t.get(q).unwrap_or(0));
        }
    }

    #[test]
    fn u64_keys_work() {
        let mut t: SwissTable<u64, u64> = SwissTable::with_capacity_slots(1 << 10);
        for i in 1..=600u64 {
            t.insert(i << 20, i).unwrap();
        }
        assert_eq!(t.get(300 << 20), Some(300));
    }

    #[test]
    fn group_matcher_semantics() {
        let mut ctrl = [EMPTY; GROUP];
        ctrl[3] = 0x42;
        ctrl[7] = 0x42;
        ctrl[9] = DELETED;
        let g = Group::load(&ctrl);
        assert_eq!(g.match_byte(0x42), (1 << 3) | (1 << 7));
        assert_eq!(g.match_empty().count_ones(), 13);
        assert_eq!(g.match_free().count_ones(), 14);
    }
}
