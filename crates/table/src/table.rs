//! The `(N, m)` cuckoo hash table.
//!
//! [`CuckooTable`] stores fixed-width hash keys and payloads (paper §I:
//! the KVS layer maps variable-length application keys to these) in either
//! an [interleaved](crate::Arrangement::Interleaved) or a
//! [split](crate::Arrangement::Split) bucket arrangement. Bucket placement
//! uses the tag-dispersed (partial-key cuckoo) scheme of
//! [`HashFamily::tag_dispersed`]: way 0 is a plain multiply-shift base
//! bucket and every further way XORs a dispersal of the key's short tag
//! fingerprint onto it, so the relocation path can derive an occupant's
//! alternate bucket from its current bucket and tag alone. Insertion is
//! hash-then-search with BFS path relocation (as in MemC3/libcuckoo): the
//! inserted key's candidate buckets are computed exactly once and reused by
//! the update probe, the empty-slot fast path, and the BFS roots; on
//! failure the table is left unchanged and only the new item is rejected,
//! which is what lets [`crate::loadfactor`] measure the achievable load
//! factor precisely.

use std::fmt;

use rand::Rng;
use simdht_simd::Lane;

use crate::aligned::AlignedBuf;
use crate::hash::HashFamily;
use crate::layout::{Arrangement, Layout};
use crate::MAX_WAYS_USIZE;

/// Error constructing a [`CuckooTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// [`Arrangement::Interleaved`] requires key and value lanes of equal
    /// width.
    MismatchedInterleavedWidths {
        /// Key width in bits.
        key_bits: u32,
        /// Value width in bits.
        val_bits: u32,
    },
    /// `2^log2_buckets` must be addressable by the key type's top bits.
    TooManyBuckets {
        /// Requested `log2` bucket count.
        log2_buckets: u32,
        /// Key width in bits.
        key_bits: u32,
    },
    /// The byte budget cannot hold even one bucket.
    SizeTooSmall,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::MismatchedInterleavedWidths { key_bits, val_bits } => write!(
                f,
                "interleaved arrangement needs equal key/value widths, got {key_bits}/{val_bits} bits"
            ),
            TableError::TooManyBuckets {
                log2_buckets,
                key_bits,
            } => write!(
                f,
                "2^{log2_buckets} buckets cannot be indexed by a {key_bits}-bit hash key"
            ),
            TableError::SizeTooSmall => write!(f, "byte budget smaller than one bucket"),
        }
    }
}

impl std::error::Error for TableError {}

/// Error returned by [`CuckooTable::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// Key `0` is the empty-slot sentinel and cannot be stored.
    SentinelKey,
    /// No relocation path to an empty slot was found; the table is at its
    /// achievable load factor. The table is unchanged.
    TableFull,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::SentinelKey => write!(f, "key 0 is reserved as the empty-slot sentinel"),
            InsertError::TableFull => write!(f, "no cuckoo relocation path to an empty slot"),
        }
    }
}

impl std::error::Error for InsertError {}

#[derive(Debug)]
enum Storage<K, V> {
    /// `[k v k v …]`, values bit-cast to `K` (equal widths enforced).
    Interleaved(AlignedBuf<K>),
    /// `[k k …]` + `[v v …]`, slot-indexed.
    Split {
        keys: AlignedBuf<K>,
        vals: AlignedBuf<V>,
    },
}

impl<K: Copy + Default, V: Copy + Default> Clone for Storage<K, V> {
    fn clone(&self) -> Self {
        match self {
            Storage::Interleaved(data) => Storage::Interleaved(data.clone()),
            Storage::Split { keys, vals } => Storage::Split {
                keys: keys.clone(),
                vals: vals.clone(),
            },
        }
    }
}

/// Statistics accumulated across inserts (relocation effort).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct InsertStats {
    /// Successful inserts that found an empty slot without relocating.
    pub direct: u64,
    /// Successful inserts that required a relocation path.
    pub relocated: u64,
    /// Total items moved along relocation paths.
    pub moves: u64,
    /// Inserts rejected with [`InsertError::TableFull`].
    pub failed: u64,
}

/// An `(N, m)` cuckoo hash table over `K` hash keys and `V` payloads.
///
/// Lookups take `&self` and the type is `Sync`, so a populated table can be
/// shared read-only across the benchmark's full-subscription worker threads.
///
/// # Examples
///
/// ```
/// use simdht_table::{CuckooTable, Layout};
///
/// let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 8)?;
/// t.insert(42, 1000)?;
/// assert_eq!(t.get(42), Some(1000));
/// assert_eq!(t.get(43), None);
/// t.insert(42, 2000)?; // update in place
/// assert_eq!(t.get(42), Some(2000));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CuckooTable<K, V> {
    layout: Layout,
    hash: HashFamily<K>,
    storage: Storage<K, V>,
    len: usize,
    stats: InsertStats,
}

impl<K: Lane, V: Lane> Clone for CuckooTable<K, V> {
    fn clone(&self) -> Self {
        CuckooTable {
            layout: self.layout,
            hash: self.hash.clone(),
            storage: self.storage.clone(),
            len: self.len,
            stats: self.stats,
        }
    }
}

/// Bound on BFS nodes expanded per insert before declaring the table full.
/// 2048 nodes covers relocation paths far beyond the depth at which cuckoo
/// insertion has effectively failed.
const MAX_BFS_NODES: usize = 2048;

impl<K: Lane, V: Lane> CuckooTable<K, V> {
    /// Create an empty table with `2^log2_buckets` buckets.
    ///
    /// # Errors
    ///
    /// [`TableError::MismatchedInterleavedWidths`] if the layout is
    /// interleaved and `K`/`V` widths differ;
    /// [`TableError::TooManyBuckets`] if the bucket count exceeds what a
    /// `K`-bit multiply-shift hash can index.
    pub fn new(layout: Layout, log2_buckets: u32) -> Result<Self, TableError> {
        Self::with_rng(layout, log2_buckets, &mut deterministic_rng())
    }

    /// [`CuckooTable::new`] with caller-supplied hash-multiplier randomness.
    ///
    /// # Errors
    ///
    /// See [`CuckooTable::new`].
    pub fn with_rng(
        layout: Layout,
        log2_buckets: u32,
        rng: &mut impl Rng,
    ) -> Result<Self, TableError> {
        let hash = HashFamily::tag_dispersed(layout.n_ways(), log2_buckets, rng);
        Self::with_hash_family(layout, log2_buckets, hash)
    }

    /// [`CuckooTable::new`] with a caller-supplied [`HashFamily`] — lets
    /// tests and experiments pin a placement scheme (e.g. compare the
    /// tag-dispersed default against independent per-way multipliers).
    ///
    /// # Errors
    ///
    /// See [`CuckooTable::new`]. Additionally the hash family's way count
    /// and bucket count must match `layout` / `log2_buckets`.
    pub fn with_hash_family(
        layout: Layout,
        log2_buckets: u32,
        hash: HashFamily<K>,
    ) -> Result<Self, TableError> {
        if layout.arrangement() == Arrangement::Interleaved && K::BITS != V::BITS {
            return Err(TableError::MismatchedInterleavedWidths {
                key_bits: K::BITS,
                val_bits: V::BITS,
            });
        }
        if log2_buckets >= K::BITS {
            return Err(TableError::TooManyBuckets {
                log2_buckets,
                key_bits: K::BITS,
            });
        }
        assert_eq!(hash.n_ways(), layout.n_ways());
        assert_eq!(hash.num_buckets(), 1usize << log2_buckets);
        let slots = (1usize << log2_buckets) * layout.slots_per_bucket() as usize;
        let storage = match layout.arrangement() {
            Arrangement::Interleaved => Storage::Interleaved(AlignedBuf::new_zeroed(2 * slots)),
            Arrangement::Split => Storage::Split {
                keys: AlignedBuf::new_zeroed(slots),
                vals: AlignedBuf::new_zeroed(slots),
            },
        };
        Ok(CuckooTable {
            layout,
            hash,
            storage,
            len: 0,
            stats: InsertStats::default(),
        })
    }

    /// Create a table sized to (at most) `table_bytes` of slot storage —
    /// how the paper specifies table sizes ("1 MB HT", "16 MB HT", …).
    ///
    /// # Errors
    ///
    /// [`TableError::SizeTooSmall`] if not even one bucket fits, plus the
    /// errors of [`CuckooTable::new`].
    pub fn with_bytes(layout: Layout, table_bytes: usize) -> Result<Self, TableError> {
        let buckets = layout
            .buckets_for_bytes(table_bytes, K::BITS, V::BITS)
            .ok_or(TableError::SizeTooSmall)?;
        Self::new(layout, buckets.trailing_zeros())
    }

    /// The table's layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The hash family (vector kernels replicate it in-register).
    pub fn hash_family(&self) -> &HashFamily<K> {
        &self.hash
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.hash.num_buckets()
    }

    /// Total slot capacity (`buckets × m`).
    pub fn capacity(&self) -> usize {
        self.num_buckets() * self.layout.slots_per_bucket() as usize
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current load factor (`len / capacity`).
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.capacity() as f64
    }

    /// Cumulative insert statistics.
    pub fn insert_stats(&self) -> InsertStats {
        self.stats
    }

    /// The interleaved `[k v k v …]` slot array, if this table uses the
    /// interleaved arrangement. Values are bit-cast to `K` lanes.
    pub fn interleaved(&self) -> Option<&[K]> {
        match &self.storage {
            Storage::Interleaved(data) => Some(data),
            Storage::Split { .. } => None,
        }
    }

    /// The split `([keys], [values])` slot arrays, if this table uses the
    /// split arrangement.
    pub fn split(&self) -> Option<(&[K], &[V])> {
        match &self.storage {
            Storage::Interleaved(_) => None,
            Storage::Split { keys, vals } => Some((keys, vals)),
        }
    }

    #[inline(always)]
    fn slots_per_bucket(&self) -> usize {
        self.layout.slots_per_bucket() as usize
    }

    #[inline(always)]
    fn slot_key(&self, slot: usize) -> K {
        match &self.storage {
            Storage::Interleaved(data) => data[2 * slot],
            Storage::Split { keys, .. } => keys[slot],
        }
    }

    #[inline(always)]
    fn slot_val(&self, slot: usize) -> V {
        match &self.storage {
            Storage::Interleaved(data) => V::from_u64(data[2 * slot + 1].to_u64()),
            Storage::Split { vals, .. } => vals[slot],
        }
    }

    #[inline(always)]
    fn set_slot(&mut self, slot: usize, key: K, val: V) {
        match &mut self.storage {
            Storage::Interleaved(data) => {
                data[2 * slot] = key;
                data[2 * slot + 1] = K::from_u64(val.to_u64());
            }
            Storage::Split { keys, vals } => {
                keys[slot] = key;
                vals[slot] = val;
            }
        }
    }

    /// Slot index range of bucket `b`.
    #[inline(always)]
    pub fn bucket_slots(&self, bucket: usize) -> std::ops::Range<usize> {
        let m = self.slots_per_bucket();
        bucket * m..(bucket + 1) * m
    }

    /// Every slot index `key` is allowed to occupy (the union of its
    /// candidate buckets' slots, deduplicated). Introspection for
    /// model-based tests that independently verify [`InsertError::TableFull`]
    /// claims via bipartite matching.
    pub fn candidate_slots(&self, key: K) -> Vec<usize> {
        let mut bucket_buf = [0usize; MAX_WAYS_USIZE];
        let mut slots = Vec::new();
        let mut seen = [usize::MAX; MAX_WAYS_USIZE];
        for (w, &b) in self.hash.buckets(key, &mut bucket_buf).iter().enumerate() {
            if seen[..w].contains(&b) {
                continue;
            }
            seen[w] = b;
            slots.extend(self.bucket_slots(b));
        }
        slots
    }

    /// Request the cache lines of every candidate bucket for `key` with
    /// [`simdht_simd::prefetch_read`], without probing. Callers that know
    /// the batch ahead of time (the KVS Multi-Get index probe) issue this a
    /// few keys in advance so the probes land in warm lines; see the
    /// group-prefetch discussion in the KVS crate's DESIGN.md §9.
    #[inline]
    pub fn prefetch_candidates(&self, key: K) {
        let m = self.slots_per_bucket();
        for way in 0..self.layout.n_ways() {
            let b = self.hash.bucket(key, way);
            match &self.storage {
                Storage::Interleaved(data) => simdht_simd::prefetch_read(&data[2 * b * m]),
                Storage::Split { keys, vals } => {
                    simdht_simd::prefetch_read(&keys[b * m]);
                    simdht_simd::prefetch_read(&vals[b * m]);
                }
            }
        }
    }

    /// Scalar lookup — the non-SIMD baseline every vector kernel is
    /// compared against (the paper's "Scalar" series).
    #[inline]
    pub fn get(&self, key: K) -> Option<V> {
        if key == K::EMPTY {
            return None;
        }
        let m = self.slots_per_bucket();
        let n_ways = self.layout.n_ways();
        match &self.storage {
            Storage::Interleaved(data) => {
                for way in 0..n_ways {
                    let base = 2 * self.hash.bucket(key, way) * m;
                    let bucket = &data[base..base + 2 * m];
                    for s in 0..m {
                        if bucket[2 * s] == key {
                            return Some(V::from_u64(bucket[2 * s + 1].to_u64()));
                        }
                    }
                }
            }
            Storage::Split { keys, vals } => {
                for way in 0..n_ways {
                    let base = self.hash.bucket(key, way) * m;
                    let bucket = &keys[base..base + m];
                    for (s, k) in bucket.iter().enumerate() {
                        if *k == key {
                            return Some(vals[base + s]);
                        }
                    }
                }
            }
        }
        None
    }

    /// Scalar lookup using **volatile** per-slot loads, for callers that
    /// probe the table *racily* — concurrently with `insert`/`remove` on
    /// another thread, under an external seqlock-style validation protocol
    /// (the KVS crate's optimistic read path). The bucket arrays are
    /// fixed-capacity and never reallocate, so the only hazard is torn
    /// *values*, which the caller's validation must reject; volatile loads
    /// keep every racing access at word granularity instead of forming a
    /// `&[K]` slice over memory a writer may be storing to (the
    /// crossbeam-seqlock discipline). Unlike [`CuckooTable::get`], a racing
    /// writer can make this return a stale, missing, or torn payload — the
    /// caller must treat the result as a *candidate* only.
    pub fn get_racy(&self, key: K) -> Option<V> {
        if key == K::EMPTY {
            return None;
        }
        let m = self.slots_per_bucket();
        for way in 0..self.layout.n_ways() {
            let b = self.hash.bucket(key, way);
            for s in b * m..(b + 1) * m {
                // SAFETY: `s` is within the slot capacity by the bucket
                // geometry, the buffers live for `&self`'s lifetime, and
                // volatile loads tolerate concurrent stores to the same
                // words (contents may tear; addresses cannot).
                let (k, v) = unsafe {
                    match &self.storage {
                        Storage::Interleaved(data) => {
                            let base = data.as_ptr();
                            (
                                std::ptr::read_volatile(base.add(2 * s)),
                                V::from_u64(std::ptr::read_volatile(base.add(2 * s + 1)).to_u64()),
                            )
                        }
                        Storage::Split { keys, vals } => (
                            std::ptr::read_volatile(keys.as_ptr().add(s)),
                            std::ptr::read_volatile(vals.as_ptr().add(s)),
                        ),
                    }
                };
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Insert or update `key → value`.
    ///
    /// # Errors
    ///
    /// [`InsertError::SentinelKey`] for key `0`;
    /// [`InsertError::TableFull`] when no relocation path to an empty slot
    /// exists (the table is unchanged and has reached its achievable load
    /// factor for this key sequence).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), InsertError> {
        if key == K::EMPTY {
            return Err(InsertError::SentinelKey);
        }
        // Hash-then-search: compute the key's candidate buckets exactly
        // once; the update probe, the empty-slot fast path, and the BFS
        // roots all reuse them instead of re-hashing per phase.
        let mut bucket_buf = [0usize; MAX_WAYS_USIZE];
        let buckets = self.hash.buckets(key, &mut bucket_buf);
        // Update in place if present.
        let m = self.slots_per_bucket();
        for &b in buckets {
            for s in b * m..(b + 1) * m {
                if self.slot_key(s) == key {
                    self.set_slot(s, key, value);
                    return Ok(());
                }
            }
        }
        // Fast path: an empty slot in any candidate bucket.
        for &b in buckets {
            if let Some(slot) = self.empty_slot_in(b) {
                self.set_slot(slot, key, value);
                self.len += 1;
                self.stats.direct += 1;
                return Ok(());
            }
        }
        // BFS for a relocation path ending at an empty slot.
        match self.find_relocation_path(buckets) {
            Some(path) => {
                self.stats.moves += (path.len() - 1) as u64;
                // path = [root, …, free]; shift occupants toward the free
                // slot, back to front.
                for w in (1..path.len()).rev() {
                    let from = path[w - 1];
                    let (k, v) = (self.slot_key(from), self.slot_val(from));
                    self.set_slot(path[w], k, v);
                }
                self.set_slot(path[0], key, value);
                self.len += 1;
                self.stats.relocated += 1;
                Ok(())
            }
            None => {
                self.stats.failed += 1;
                Err(InsertError::TableFull)
            }
        }
    }

    /// Remove `key`, returning its payload if present.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let slot = self.find_slot(key)?;
        let val = self.slot_val(slot);
        self.set_slot(slot, K::EMPTY, V::EMPTY);
        self.len -= 1;
        Some(val)
    }

    /// Remove all items (storage is retained).
    pub fn clear(&mut self) {
        let slots = self.capacity();
        for s in 0..slots {
            self.set_slot(s, K::EMPTY, V::EMPTY);
        }
        self.len = 0;
    }

    /// Iterate over all stored `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        (0..self.capacity()).filter_map(move |s| {
            let k = self.slot_key(s);
            (k != K::EMPTY).then(|| (k, self.slot_val(s)))
        })
    }

    fn find_slot(&self, key: K) -> Option<usize> {
        let m = self.slots_per_bucket();
        for way in 0..self.layout.n_ways() {
            let b = self.hash.bucket(key, way);
            for s in b * m..(b + 1) * m {
                if self.slot_key(s) == key {
                    return Some(s);
                }
            }
        }
        None
    }

    /// First empty slot of `bucket` — the insert path's occupancy scan.
    ///
    /// For 32-bit key lanes (the width every KVS index instantiates) the
    /// bucket's key lanes are viewed as raw `u32` words and scanned with
    /// one SIMD movemask against the empty sentinel
    /// ([`simdht_simd::scan::eq_lane_mask_u32`]); interleaved storage
    /// scans all `2m` lanes and keeps the even (key) bits. Other widths
    /// keep the scalar walk. Both orders are left-to-right, so placement
    /// is bit-identical (pinned by `empty_slot_scan_matches_scalar`).
    ///
    /// Writer-side only (`&mut self` up the stack): the non-atomic loads
    /// race nothing — concurrent racy readers only read.
    fn empty_slot_in(&self, bucket: usize) -> Option<usize> {
        let m = self.slots_per_bucket();
        if K::BITS == 32
            && std::mem::size_of::<K>() == 4
            && std::mem::align_of::<K>() == 4
            && m <= 16
        {
            let empty = K::EMPTY.to_u64() as u32;
            let range = self.bucket_slots(bucket);
            return match &self.storage {
                Storage::Interleaved(data) => {
                    // SAFETY: `K` is a 4-byte/4-aligned plain integer lane
                    // (checked above); the `2m` lanes starting at key lane
                    // `2 * range.start` are in bounds, and `u32` accepts
                    // any bit pattern.
                    let lanes: &[u32] = unsafe {
                        std::slice::from_raw_parts(data[2 * range.start..].as_ptr().cast(), 2 * m)
                    };
                    // Keys are the even lanes of the `[k v k v …]` row.
                    let mask = simdht_simd::scan::eq_lane_mask_u32(lanes, empty) & 0x5555_5555;
                    (mask != 0).then(|| range.start + (mask.trailing_zeros() / 2) as usize)
                }
                Storage::Split { keys, .. } => {
                    // SAFETY: as above; the `m` key lanes of this bucket.
                    let lanes: &[u32] = unsafe {
                        std::slice::from_raw_parts(keys[range.start..].as_ptr().cast(), m)
                    };
                    let mask = simdht_simd::scan::eq_lane_mask_u32(lanes, empty);
                    (mask != 0).then(|| range.start + mask.trailing_zeros() as usize)
                }
            };
        }
        self.empty_slot_in_scalar(bucket)
    }

    /// The scalar left-to-right walk [`CuckooTable::empty_slot_in`]
    /// replaces; kept as the placement oracle for the differential pin.
    fn empty_slot_in_scalar(&self, bucket: usize) -> Option<usize> {
        self.bucket_slots(bucket)
            .find(|&s| self.slot_key(s) == K::EMPTY)
    }

    /// BFS over "evict the occupant of slot X" states; returns a path of
    /// slots `[root, …, free]` where each occupant moves one step toward
    /// `free` and the new key lands in `root`.
    fn find_relocation_path(&self, start_buckets: &[usize]) -> Option<Vec<usize>> {
        #[derive(Copy, Clone)]
        struct Node {
            slot: usize,
            parent: usize, // index into `nodes`; usize::MAX for roots
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(256);
        let mut visited_buckets = std::collections::HashSet::new();
        for &b in start_buckets {
            if visited_buckets.insert(b) {
                for s in self.bucket_slots(b) {
                    nodes.push(Node {
                        slot: s,
                        parent: usize::MAX,
                    });
                }
            }
        }
        let mut head = 0;
        while head < nodes.len() && nodes.len() < MAX_BFS_NODES {
            let cur = nodes[head];
            let occupant = self.slot_key(cur.slot);
            debug_assert_ne!(occupant, K::EMPTY, "BFS expanded an empty slot");
            // The occupant's escape buckets come from its tag: for the
            // 2-way scheme `cur ^ disperse(tag)` (the partial-key XOR
            // involution — no base re-hash), for N ways one base + one tag
            // multiply instead of N independent hashes.
            let cur_bucket = cur.slot / self.slots_per_bucket();
            let mut bucket_buf = [0usize; MAX_WAYS_USIZE];
            let alts = self
                .hash
                .relocation_buckets(occupant, cur_bucket, &mut bucket_buf);
            for &alt in alts {
                if !visited_buckets.insert(alt) {
                    continue;
                }
                if let Some(free) = self.empty_slot_in(alt) {
                    // Reconstruct: free ← cur ← … ← root.
                    let mut path = vec![free];
                    let mut at = head;
                    loop {
                        path.push(nodes[at].slot);
                        if nodes[at].parent == usize::MAX {
                            break;
                        }
                        at = nodes[at].parent;
                    }
                    path.reverse();
                    return Some(path);
                }
                for s in self.bucket_slots(alt) {
                    nodes.push(Node {
                        slot: s,
                        parent: head,
                    });
                }
            }
            head += 1;
        }
        None
    }
}

pub(crate) fn deterministic_rng() -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        0x51_6d_48_54_2d_44, /* arbitrary; chosen so deterministic fixtures fill */
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn layouts() -> Vec<Layout> {
        vec![
            Layout::n_way(2),
            Layout::n_way(3),
            Layout::n_way(4),
            Layout::bcht(2, 2),
            Layout::bcht(2, 4),
            Layout::bcht(2, 8),
            Layout::bcht(3, 4),
            Layout::bcht(2, 4).with_arrangement(Arrangement::Split),
            Layout::n_way(3).with_arrangement(Arrangement::Split),
        ]
    }

    #[test]
    fn insert_get_roundtrip_all_layouts() {
        for layout in layouts() {
            let mut t: CuckooTable<u32, u32> = CuckooTable::new(layout, 8).unwrap();
            let n = (t.capacity() as f64 * 0.5) as u32;
            for i in 1..=n {
                t.insert(i * 7 + 1, i).unwrap_or_else(|e| {
                    panic!("insert failed at {i}/{n} for {layout}: {e}");
                });
            }
            for i in 1..=n {
                assert_eq!(t.get(i * 7 + 1), Some(i), "layout {layout}");
            }
            assert_eq!(t.len(), n as usize);
        }
    }

    #[test]
    fn get_racy_matches_get_when_quiescent() {
        for layout in layouts() {
            let mut t: CuckooTable<u32, u32> = CuckooTable::new(layout, 8).unwrap();
            let n = (t.capacity() as f64 * 0.5) as u32;
            for i in 1..=n {
                t.insert(i * 7 + 1, i).unwrap();
            }
            for i in 1..=n {
                assert_eq!(t.get_racy(i * 7 + 1), t.get(i * 7 + 1), "layout {layout}");
            }
            for i in 0..200u32 {
                let miss = 1_000_000 + i;
                assert_eq!(t.get_racy(miss), t.get(miss), "layout {layout}");
            }
            assert_eq!(t.get_racy(0), None, "sentinel, layout {layout}");
        }
    }

    /// The SIMD occupancy scan places inserts in exactly the slot the
    /// scalar walk would pick, across every layout/arrangement and an
    /// arbitrary insert/remove history — and across lane widths (u16/u64
    /// take the scalar fallback, u32 the movemask path).
    #[test]
    fn empty_slot_scan_matches_scalar() {
        fn drive<K: Lane, V: Lane>(layout: Layout, mk_key: impl Fn(u64) -> K) {
            let Ok(mut t) = CuckooTable::<K, V>::new(layout, 6) else {
                return; // mixed-width interleaved layouts are rejected
            };
            let buckets = t.capacity() / t.slots_per_bucket();
            let mut live: Vec<K> = Vec::new();
            let mut state = 0x7AB1_E000u64 ^ u64::from(layout.slots_per_bucket());
            for _ in 0..600 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if !state.is_multiple_of(3) || live.is_empty() {
                    let k = mk_key(state);
                    if k != K::EMPTY && t.insert(k, V::from_u64(1)).is_ok() {
                        live.push(k);
                    }
                } else {
                    let k = live.swap_remove((state >> 33) as usize % live.len());
                    t.remove(k);
                }
                for b in 0..buckets {
                    assert_eq!(
                        t.empty_slot_in(b),
                        t.empty_slot_in_scalar(b),
                        "layout {layout}, bucket {b}"
                    );
                }
            }
        }
        for layout in layouts() {
            drive::<u32, u32>(layout, |s| s as u32);
            drive::<u16, u16>(layout, |s| s as u16);
            drive::<u64, u64>(layout, |s| s);
        }
    }

    #[test]
    fn misses_return_none() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 6).unwrap();
        for i in 1..100u32 {
            t.insert(i, i).unwrap();
        }
        for i in 1000..1100u32 {
            assert_eq!(t.get(i), None);
        }
        assert_eq!(t.get(0), None, "sentinel key is never present");
    }

    #[test]
    fn sentinel_key_rejected() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::n_way(2), 4).unwrap();
        assert_eq!(t.insert(0, 5), Err(InsertError::SentinelKey));
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 2), 4).unwrap();
        t.insert(9, 1).unwrap();
        t.insert(9, 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(9), Some(2));
    }

    #[test]
    fn remove_frees_slot() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 6).unwrap();
        for i in 1..=50u32 {
            t.insert(i, i * 2).unwrap();
        }
        assert_eq!(t.remove(25), Some(50));
        assert_eq!(t.get(25), None);
        assert_eq!(t.len(), 49);
        assert_eq!(t.remove(25), None);
        // Slot is reusable.
        t.insert(25, 99).unwrap();
        assert_eq!(t.get(25), Some(99));
    }

    #[test]
    fn interleaved_requires_equal_widths() {
        let err = CuckooTable::<u16, u32>::new(Layout::bcht(2, 8), 6).unwrap_err();
        assert!(matches!(
            err,
            TableError::MismatchedInterleavedWidths { .. }
        ));
        // Split arrangement accepts mixed widths.
        let t = CuckooTable::<u16, u32>::new(
            Layout::bcht(2, 8).with_arrangement(Arrangement::Split),
            6,
        );
        assert!(t.is_ok());
    }

    #[test]
    fn mixed_width_split_roundtrip() {
        let mut t: CuckooTable<u16, u32> =
            CuckooTable::new(Layout::bcht(2, 8).with_arrangement(Arrangement::Split), 8).unwrap();
        for i in 1..=1000u16 {
            t.insert(i, u32::from(i) * 1000).unwrap();
        }
        for i in 1..=1000u16 {
            assert_eq!(t.get(i), Some(u32::from(i) * 1000));
        }
    }

    #[test]
    fn u64_keys_roundtrip() {
        let mut t: CuckooTable<u64, u64> = CuckooTable::new(Layout::n_way(3), 10).unwrap();
        for i in 1..=800u64 {
            t.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i).unwrap();
        }
        for i in 1..=800u64 {
            assert_eq!(t.get(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), Some(i));
        }
    }

    #[test]
    fn reaches_high_load_factor_with_bcht() {
        // (2,4) BCHT should exceed 90 % load factor (paper Fig. 2).
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 10).unwrap();
        let mut inserted = 0u32;
        let mut k = 1u32;
        loop {
            if t.insert(k.wrapping_mul(2_654_435_761).max(1), k).is_err() {
                break;
            }
            inserted += 1;
            k += 1;
        }
        let lf = f64::from(inserted) / t.capacity() as f64;
        assert!(lf > 0.90, "load factor only {lf:.3}");
    }

    #[test]
    fn two_way_nonbucketized_load_factor_near_half() {
        // Random keys: the classic 2-way cuckoo threshold is 50 %.
        // (Structured key sequences interact with multiply-shift hashing to
        // give unrealistically regular cuckoo graphs — see loadfactor tests.)
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::n_way(2), 10).unwrap();
        loop {
            let k: u32 = rng.gen::<u32>().max(1);
            if t.contains(k) {
                continue;
            }
            if t.insert(k, 1).is_err() {
                break;
            }
        }
        let lf = t.load_factor();
        assert!(
            lf > 0.30 && lf < 0.70,
            "2-way LF should be near 0.5, got {lf:.3}"
        );
    }

    #[test]
    fn failed_insert_leaves_table_intact() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::n_way(2), 4).unwrap();
        let mut reference = HashMap::new();
        let mut k = 1u32;
        loop {
            let key = k.wrapping_mul(2_654_435_761).max(1);
            match t.insert(key, k) {
                Ok(()) => {
                    reference.insert(key, k);
                }
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("{e}"),
            }
            k += 1;
        }
        // All previously stored pairs survive the failed insert.
        assert_eq!(t.len(), reference.len());
        for (key, v) in &reference {
            assert_eq!(t.get(*key), Some(*v));
        }
    }

    #[test]
    fn iter_matches_contents() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 2), 6).unwrap();
        for i in 1..=40u32 {
            t.insert(i, i + 100).unwrap();
        }
        let collected: HashMap<u32, u32> = t.iter().collect();
        assert_eq!(collected.len(), 40);
        assert_eq!(collected[&7], 107);
    }

    #[test]
    fn clear_resets() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 2), 6).unwrap();
        for i in 1..=40u32 {
            t.insert(i, i).unwrap();
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(7), None);
        t.insert(7, 7).unwrap();
        assert_eq!(t.get(7), Some(7));
    }

    #[test]
    fn with_bytes_sizes_table() {
        let t: CuckooTable<u32, u32> =
            CuckooTable::with_bytes(Layout::bcht(2, 4), 1 << 20).unwrap();
        // (2,4) x (32,32): 32 B/bucket -> 32768 buckets, 131072 slots = 1 MiB.
        assert_eq!(t.num_buckets(), 32768);
        assert_eq!(t.capacity(), 131072);
    }

    #[test]
    fn stats_track_relocations() {
        let mut t: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 8).unwrap();
        let mut k = 1u32;
        while t.insert(k.wrapping_mul(2_654_435_761).max(1), k).is_ok() {
            k += 1;
        }
        let s = t.insert_stats();
        assert!(s.direct > 0);
        assert!(s.relocated > 0, "high-LF fill must relocate");
        assert_eq!(s.failed, 1);
        assert_eq!(s.direct + s.relocated, t.len() as u64);
    }
}
