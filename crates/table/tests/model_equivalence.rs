//! Model-based property tests: a `CuckooTable` under a random sequence of
//! insert/update/remove/get operations must behave exactly like a
//! `HashMap`, for every layout family the paper studies.

use std::collections::HashMap;

use proptest::prelude::*;
use simdht_table::{Arrangement, CuckooTable, InsertError, Layout};

#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u32),
    Remove(u32),
    Get(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key space so that collisions, updates and removals actually occur.
    let key = 1u32..300;
    prop_oneof![
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.prop_map(Op::Get),
    ]
}

/// Kuhn's augmenting-path bipartite matching: can every key (left) be
/// assigned a distinct candidate slot (right)?
fn has_perfect_matching(candidates: &[Vec<usize>]) -> bool {
    fn try_assign(
        key: usize,
        candidates: &[Vec<usize>],
        slot_owner: &mut HashMap<usize, usize>,
        visited: &mut Vec<usize>,
    ) -> bool {
        for &slot in &candidates[key] {
            if visited.contains(&slot) {
                continue;
            }
            visited.push(slot);
            let free = match slot_owner.get(&slot) {
                None => true,
                Some(&owner) => try_assign(owner, candidates, slot_owner, visited),
            };
            if free {
                slot_owner.insert(slot, key);
                return true;
            }
        }
        false
    }
    let mut slot_owner = HashMap::new();
    for key in 0..candidates.len() {
        let mut visited = Vec::new();
        if !try_assign(key, candidates, &mut slot_owner, &mut visited) {
            return false;
        }
    }
    true
}

/// `TableFull` is legitimate iff no assignment of every stored key plus
/// the rejected key to distinct candidate slots exists (Hall's theorem —
/// an exact check, unlike a load-factor heuristic: a tiny 2-way table can
/// genuinely saturate a cuckoo component at very low global load).
fn assert_genuinely_full(table: &CuckooTable<u32, u32>, model: &HashMap<u32, u32>, key: u32) {
    let candidates: Vec<Vec<usize>> = model
        .keys()
        .chain(std::iter::once(&key))
        .map(|&k| table.candidate_slots(k))
        .collect();
    assert!(
        !has_perfect_matching(&candidates),
        "spurious TableFull: inserting {key} at LF {:.3} had a feasible assignment",
        table.load_factor()
    );
}

fn run_model(layout: Layout, ops: &[Op]) {
    let mut table: CuckooTable<u32, u32> = CuckooTable::new(layout, 7).unwrap();
    let mut model: HashMap<u32, u32> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => match table.insert(k, v) {
                Ok(()) => {
                    model.insert(k, v);
                }
                Err(InsertError::TableFull) => {
                    // Model unchanged; verify the refusal exactly.
                    assert_genuinely_full(&table, &model, k);
                }
                Err(e) => panic!("unexpected error: {e}"),
            },
            Op::Remove(k) => {
                assert_eq!(table.remove(k), model.remove(&k), "remove({k})");
            }
            Op::Get(k) => {
                assert_eq!(table.get(k), model.get(&k).copied(), "get({k})");
            }
        }
        assert_eq!(table.len(), model.len());
    }
    // Final state must agree exactly.
    for (&k, &v) in &model {
        assert_eq!(table.get(k), Some(v), "final get({k})");
    }
    assert_eq!(table.iter().count(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_hashmap_2way(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(Layout::n_way(2), &ops);
    }

    #[test]
    fn matches_hashmap_3way(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(Layout::n_way(3), &ops);
    }

    #[test]
    fn matches_hashmap_bcht24(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(Layout::bcht(2, 4), &ops);
    }

    #[test]
    fn matches_hashmap_bcht28_split(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(Layout::bcht(2, 8).with_arrangement(Arrangement::Split), &ops);
    }

    #[test]
    fn matches_hashmap_bcht32(ops in prop::collection::vec(op_strategy(), 1..400)) {
        run_model(Layout::bcht(3, 2), &ops);
    }

    #[test]
    fn u64_table_matches_hashmap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        // Same ops replayed on a u64-keyed table.
        let mut table: CuckooTable<u64, u64> = CuckooTable::new(Layout::n_way(3), 7).unwrap();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (u64::from(k) << 17, u64::from(v));
                    if table.insert(k, v).is_ok() {
                        model.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    let k = u64::from(k) << 17;
                    prop_assert_eq!(table.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    let k = u64::from(k) << 17;
                    prop_assert_eq!(table.get(k), model.get(&k).copied());
                }
            }
        }
    }
}
