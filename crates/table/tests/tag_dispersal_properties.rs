//! Property tests pinning the tag-dispersed placement scheme (ISSUE 8).
//!
//! The relocation path derives an occupant's alternate bucket from its
//! *stored tag* alone (`cur_bucket ^ disperse(tag, way)`) instead of
//! re-hashing the key per way. These tests pin that derivation to the
//! reference per-way computation (`HashFamily::bucket`) for every layout
//! and key width, including engineered tag-collision corpora, and assert
//! the hash-then-search insert path relocates no more than the old
//! independent-multiplier placement on a seeded workload.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use simdht_table::{CuckooTable, HashFamily, Layout, MAX_WAYS_USIZE};

/// Reference computation: per-way buckets via `HashFamily::bucket`
/// (the "two-hash" path the tag derivation replaces).
fn reference_buckets(hash: &HashFamily<u32>, key: u32) -> Vec<usize> {
    (0..hash.n_ways()).map(|w| hash.bucket(key, w)).collect()
}

/// Tag-derived computation: base bucket once, then XOR the tag dispersal
/// per way — the arithmetic the BFS relocation path uses.
fn tag_derived_buckets(hash: &HashFamily<u32>, key: u32) -> Vec<usize> {
    let base = hash.bucket(key, 0);
    let tag = hash.tag(key);
    (0..hash.n_ways())
        .map(|w| {
            if w == 0 {
                base
            } else {
                base ^ hash.disperse(tag, w)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tag-derived alternate-bucket computation agrees with the
    /// per-way reference for every way count, table size, and key.
    #[test]
    fn tag_derivation_matches_two_hash(
        n_ways in 2u32..=8,
        log2 in 4u32..=14,
        seed in any::<u64>(),
        keys in prop::collection::vec(1u32..u32::MAX, 1..64),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hash: HashFamily<u32> = HashFamily::tag_dispersed(n_ways, log2, &mut rng);
        for &key in &keys {
            prop_assert_eq!(reference_buckets(&hash, key), tag_derived_buckets(&hash, key));
        }
    }

    /// `relocation_buckets` (what BFS expansion actually calls) returns
    /// exactly the reference candidate set minus the current bucket, for
    /// every possible current bucket of the key.
    #[test]
    fn relocation_buckets_match_reference(
        n_ways in 2u32..=8,
        log2 in 4u32..=12,
        seed in any::<u64>(),
        keys in prop::collection::vec(1u32..u32::MAX, 1..32),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hash: HashFamily<u32> = HashFamily::tag_dispersed(n_ways, log2, &mut rng);
        let mut buf = [0usize; MAX_WAYS_USIZE];
        for &key in &keys {
            let all = reference_buckets(&hash, key);
            for (cur_way, &cur) in all.iter().enumerate() {
                let mut expected: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&b| b != cur)
                    .collect();
                let mut got = hash.relocation_buckets(key, cur, &mut buf).to_vec();
                expected.sort_unstable();
                expected.dedup();
                got.sort_unstable();
                got.dedup();
                prop_assert_eq!(
                    got, expected,
                    "key {} cur way {} bucket {}", key, cur_way, cur
                );
            }
        }
    }

    /// 2-way tables use the pure XOR involution: the partner derived from
    /// `(cur_bucket, tag)` is the other candidate bucket, in both
    /// directions, without ever touching the key.
    #[test]
    fn partner_bucket_matches_two_hash(
        log2 in 4u32..=14,
        seed in any::<u64>(),
        keys in prop::collection::vec(1u32..u32::MAX, 1..64),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hash: HashFamily<u32> = HashFamily::tag_dispersed(2, log2, &mut rng);
        for &key in &keys {
            let b0 = hash.bucket(key, 0);
            let b1 = hash.bucket(key, 1);
            let tag = hash.tag(key);
            prop_assert_eq!(hash.partner_bucket(b0, tag), b1);
            prop_assert_eq!(hash.partner_bucket(b1, tag), b0);
        }
    }

    /// Engineered tag collisions: keys sharing a tag must each still derive
    /// their own correct alternate buckets, and two same-tag keys sharing a
    /// current bucket must agree on the partner (the derivation only sees
    /// `(bucket, tag)`, so consistency across colliding keys is the
    /// correctness condition for relocating *any* same-tag occupant).
    #[test]
    fn tag_collision_corpus_agrees(
        n_ways in 2u32..=8,
        log2 in 4u32..=10,
        seed in any::<u64>(),
        start in 1u32..0x1000_0000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hash: HashFamily<u32> = HashFamily::tag_dispersed(n_ways, log2, &mut rng);
        // Engineer a corpus of keys that all share the tag of `start`.
        let target = hash.tag(start);
        let mut corpus = vec![start];
        let mut k = start.wrapping_add(1);
        while corpus.len() < 8 {
            if k != 0 && hash.tag(k) == target {
                corpus.push(k);
            }
            k = k.wrapping_add(1);
            if k == start {
                break; // tag space exhausted (tiny key widths only)
            }
        }
        prop_assert!(corpus.len() >= 2, "could not engineer a tag collision");
        for &key in &corpus {
            prop_assert_eq!(hash.tag(key), target);
            prop_assert_eq!(reference_buckets(&hash, key), tag_derived_buckets(&hash, key));
        }
        // Same (bucket, tag) inputs → same derived dispersal for every way,
        // regardless of which colliding key the occupant actually is.
        for w in 1..n_ways {
            let d = hash.disperse(target, w);
            for &key in &corpus {
                prop_assert_eq!(hash.bucket(key, w), hash.bucket(key, 0) ^ d);
            }
        }
    }

    /// Width coverage: the derivation agrees for u16 and u64 keys too
    /// (different tag widths: 8 and 16 bits of fingerprint).
    #[test]
    fn tag_derivation_matches_other_widths(
        n_ways in 2u32..=8,
        seed in any::<u64>(),
        key16 in 1u16..u16::MAX,
        key64 in 1u64..u64::MAX,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let h16: HashFamily<u16> = HashFamily::tag_dispersed(n_ways, 6, &mut rng);
        let h64: HashFamily<u64> = HashFamily::tag_dispersed(n_ways, 12, &mut rng);
        for w in 0..n_ways {
            let b16 = h16.bucket(key16, w);
            let b64 = h64.bucket(key64, w);
            let d16 = if w == 0 { 0 } else { h16.disperse(h16.tag(key16), w) };
            let d64 = if w == 0 { 0 } else { h64.disperse(h64.tag(key64), w) };
            prop_assert_eq!(b16, h16.bucket(key16, 0) ^ d16);
            prop_assert_eq!(b64, h64.bucket(key64, 0) ^ d64);
        }
    }
}

/// Seeded-workload relocation parity: the hash-then-search insert path
/// under tag-dispersed placement must not relocate more than the old
/// independent-multiplier placement on the same workload. Aggregated over
/// fixed seeds so the assertion pins scheme behavior, not one lucky draw.
#[test]
fn relocations_no_worse_than_independent_placement() {
    let layouts = [Layout::bcht(2, 4), Layout::bcht(2, 2), Layout::n_way(3)];
    let mut new_total = 0u64;
    let mut old_total = 0u64;
    for (li, layout) in layouts.iter().enumerate() {
        for seed in 0..8u64 {
            let log2 = 8;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15_0000 + seed * 31 + li as u64);
            let tag_hash: HashFamily<u32> =
                HashFamily::tag_dispersed(layout.n_ways(), log2, &mut rng);
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15_0000 + seed * 31 + li as u64);
            let ind_hash: HashFamily<u32> = HashFamily::new(layout.n_ways(), log2, &mut rng);
            let mut new_table: CuckooTable<u32, u32> =
                CuckooTable::with_hash_family(*layout, log2, tag_hash).unwrap();
            let mut old_table: CuckooTable<u32, u32> =
                CuckooTable::with_hash_family(*layout, log2, ind_hash).unwrap();
            // Fill both to 80% of the lower first-failure point with the
            // same pseudorandom key stream.
            let n = (new_table.capacity() as f64 * 0.75) as usize;
            let mut keys = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            for _ in 0..n {
                let k: u32 = keys.gen::<u32>().max(1);
                let _ = new_table.insert(k, 1);
                let _ = old_table.insert(k, 1);
            }
            new_total += new_table.insert_stats().relocated;
            old_total += old_table.insert_stats().relocated;
        }
    }
    assert!(
        new_total <= old_total,
        "tag-dispersed relocations regressed: new {new_total} vs independent {old_total}"
    );
}
