//! Property tests over the table variants beyond the core cuckoo table:
//! the SwissTable and the sharded concurrent table must both behave exactly
//! like a `HashMap` under randomized operation sequences, and the sharded
//! table must agree with an unsharded table on every read.

use std::collections::HashMap;

use proptest::prelude::*;
use simdht_table::sharded::ShardedTable;
use simdht_table::swiss::{SwissFull, SwissTable};
use simdht_table::{CuckooTable, Layout};

#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u32),
    Remove(u32),
    Get(u32),
}

fn ops(max_key: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    let key = 1u32..max_key;
    prop::collection::vec(
        prop_oneof![
            (key.clone(), 1u32..u32::MAX).prop_map(|(k, v)| Op::Insert(k, v)),
            key.clone().prop_map(Op::Remove),
            key.prop_map(Op::Get),
        ],
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn swiss_matches_hashmap(ops in ops(400, 500)) {
        let mut table: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
        let mut model: HashMap<u32, u32> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => match table.insert(k, v) {
                    Ok(()) => {
                        model.insert(k, v);
                    }
                    Err(SwissFull) => prop_assert!(
                        table.load_factor() > 0.8,
                        "spurious SwissFull at LF {:.3}",
                        table.load_factor()
                    ),
                },
                Op::Remove(k) => prop_assert_eq!(table.remove(k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(table.get(k), model.get(&k).copied()),
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    #[test]
    fn sharded_matches_hashmap(ops in ops(600, 400), shards in 1usize..8) {
        let table: ShardedTable<u32, u32> =
            ShardedTable::new(Layout::bcht(2, 4), 7, shards).unwrap();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    if table.insert(k, v).is_ok() {
                        model.insert(k, v);
                    }
                }
                Op::Remove(k) => prop_assert_eq!(table.remove(k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(table.get(k), model.get(&k).copied()),
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }

    #[test]
    fn sharded_agrees_with_unsharded(
        pairs in prop::collection::vec((1u32..5000, 1u32..u32::MAX), 1..400),
        queries in prop::collection::vec(1u32..8000, 1..200),
    ) {
        let sharded: ShardedTable<u32, u32> =
            ShardedTable::new(Layout::bcht(2, 4), 7, 4).unwrap();
        let mut plain: CuckooTable<u32, u32> = CuckooTable::new(Layout::bcht(2, 4), 9).unwrap();
        for &(k, v) in &pairs {
            let a = sharded.insert(k, v).is_ok();
            let b = plain.insert(k, v).is_ok();
            // Capacity differs (4 x 128 vs 512 buckets, different hash
            // functions) so insert failures may differ near the limit, but
            // at these fill levels both must accept everything.
            prop_assert!(a && b, "insert refused below max load factor");
        }
        for &q in &queries {
            prop_assert_eq!(sharded.get(q), plain.get(q));
        }
    }

    #[test]
    fn swiss_batch_get_is_get(
        pairs in prop::collection::vec((1u32..2000, 1u32..u32::MAX), 1..300),
        queries in prop::collection::vec(1u32..4000, 1..200),
    ) {
        let mut table: SwissTable<u32, u32> = SwissTable::with_capacity_slots(1 << 10);
        for &(k, v) in &pairs {
            let _ = table.insert(k, v);
        }
        let mut out = vec![0u32; queries.len()];
        let hits = table.get_batch(&queries, &mut out);
        let mut expect_hits = 0;
        for (i, &q) in queries.iter().enumerate() {
            match table.get(q) {
                Some(v) => {
                    prop_assert_eq!(out[i], v);
                    expect_hits += 1;
                }
                None => prop_assert_eq!(out[i], 0),
            }
        }
        prop_assert_eq!(hits, expect_hits);
    }
}
