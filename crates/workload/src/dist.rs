//! Access-pattern distributions — the paper's *workload data access pattern*
//! design dimension (§III-A.2).
//!
//! Two patterns are supported, matching the paper's experiments:
//!
//! * [`AccessPattern::Uniform`] — every stored key equally likely, as in
//!   network packet-processing workloads (CuckooSwitch, Cuckoo++).
//! * [`AccessPattern::Zipfian`] — a heavily skewed popularity distribution,
//!   as measured in Facebook's Memcached traces and produced by the
//!   `mutilate` load generator the paper plugs in. The sampler is the
//!   constant-time YCSB/Gray et al. method.

use rand::Rng;

/// Default Zipfian skew used by YCSB and mutilate.
pub const DEFAULT_ZIPF_THETA: f64 = 0.99;

/// A workload access pattern over `n` ranked items.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AccessPattern {
    /// Every item equally likely.
    Uniform,
    /// Zipf-distributed popularity with skew `theta` in `(0, 1)`;
    /// `theta = 0.99` reproduces the mutilate/Memcached skew.
    Zipfian {
        /// Skew parameter (0 = uniform-like, →1 = extremely skewed).
        theta: f64,
    },
}

impl AccessPattern {
    /// The mutilate-like default skewed pattern.
    pub fn skewed() -> Self {
        AccessPattern::Zipfian {
            theta: DEFAULT_ZIPF_THETA,
        }
    }

    /// Short label used in experiment output ("uniform" / "skewed").
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Uniform => "uniform",
            AccessPattern::Zipfian { .. } => "skewed",
        }
    }
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPattern::Uniform => write!(f, "uniform"),
            AccessPattern::Zipfian { theta } => write!(f, "zipfian(θ={theta})"),
        }
    }
}

/// A sampler of ranks `0..n` under an [`AccessPattern`].
///
/// Rank 0 is the most popular item under the Zipfian pattern.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use simdht_workload::{AccessPattern, RankSampler};
///
/// let sampler = RankSampler::new(AccessPattern::skewed(), 10_000);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = sampler.sample(&mut rng);
/// assert!(r < 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct RankSampler {
    n: usize,
    kind: SamplerKind,
}

#[derive(Clone, Debug)]
enum SamplerKind {
    Uniform,
    Zipf {
        theta: f64,
        alpha: f64,
        zetan: f64,
        eta: f64,
    },
}

impl RankSampler {
    /// Build a sampler over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or for a Zipfian pattern if `theta` is not in
    /// `(0, 1)`.
    pub fn new(pattern: AccessPattern, n: usize) -> Self {
        assert!(n > 0, "cannot sample from an empty item set");
        let kind = match pattern {
            AccessPattern::Uniform => SamplerKind::Uniform,
            AccessPattern::Zipfian { theta } => {
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "zipf theta must be in (0,1), got {theta}"
                );
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2.min(n), theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                SamplerKind::Zipf {
                    theta,
                    alpha,
                    zetan,
                    eta,
                }
            }
        };
        RankSampler { n, kind }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draw one rank in `0..n`.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match &self.kind {
            SamplerKind::Uniform => rng.gen_range(0..self.n),
            SamplerKind::Zipf {
                theta,
                alpha,
                zetan,
                eta,
            } => {
                let u: f64 = rng.gen();
                let uz = u * zetan;
                if uz < 1.0 {
                    return 0;
                }
                if self.n >= 2 && uz < 1.0 + 0.5f64.powf(*theta) {
                    return 1;
                }
                let rank = ((self.n as f64) * (eta * u - eta + 1.0).powf(*alpha)) as usize;
                rank.min(self.n - 1)
            }
        }
    }
}

/// Generalized harmonic number `H_{n,theta}`.
fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(pattern: AccessPattern, n: usize, draws: usize) -> Vec<usize> {
        let sampler = RankSampler::new(pattern, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_flat() {
        let counts = histogram(AccessPattern::Uniform, 100, 100_000);
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.5, "uniform too skewed: {min} vs {max}");
    }

    #[test]
    fn zipf_head_dominates() {
        let n = 10_000;
        let counts = histogram(AccessPattern::skewed(), n, 200_000);
        let head: usize = counts[..n / 100].iter().sum();
        let total: usize = counts.iter().sum();
        // With theta = 0.99 the hottest 1 % of keys should draw well over a
        // third of accesses.
        let share = head as f64 / total as f64;
        assert!(share > 0.35, "zipf head share only {share:.3}");
        // And the ranking is honored.
        assert!(counts[0] > counts[n / 2] * 10);
    }

    #[test]
    fn zipf_low_theta_flatter() {
        let hot = |theta| {
            let counts = histogram(AccessPattern::Zipfian { theta }, 1000, 100_000);
            counts[0]
        };
        assert!(hot(0.99) > hot(0.2), "higher theta must be more skewed");
    }

    #[test]
    fn ranks_in_range() {
        for pattern in [AccessPattern::Uniform, AccessPattern::skewed()] {
            let sampler = RankSampler::new(pattern, 17);
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for _ in 0..10_000 {
                assert!(sampler.sample(&mut rng) < 17);
            }
        }
    }

    #[test]
    fn single_item_always_zero() {
        let sampler = RankSampler::new(AccessPattern::skewed(), 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty item set")]
    fn zero_items_panics() {
        RankSampler::new(AccessPattern::Uniform, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(AccessPattern::Uniform.label(), "uniform");
        assert_eq!(AccessPattern::skewed().label(), "skewed");
        assert_eq!(AccessPattern::skewed().to_string(), "zipfian(θ=0.99)");
    }
}
