//! Distinct hash-key generation for table population and miss traffic.

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use simdht_simd::Lane;

/// A set of distinct, non-sentinel hash keys split into an *insert* set
/// (loaded into the table) and a disjoint *miss* set (queried to exercise
/// the paper's hit-rate/selectivity parameter).
///
/// # Examples
///
/// ```
/// use simdht_workload::KeySet;
///
/// let ks: KeySet<u32> = KeySet::generate(1000, 100, 7);
/// assert_eq!(ks.present().len(), 1000);
/// assert_eq!(ks.absent().len(), 100);
/// assert!(ks.present().iter().all(|&k| k != 0));
/// ```
#[derive(Clone, Debug)]
pub struct KeySet<K> {
    present: Vec<K>,
    absent: Vec<K>,
}

impl<K: Lane> KeySet<K> {
    /// Generate `n_present + n_absent` distinct random keys.
    ///
    /// # Panics
    ///
    /// Panics if the key space of `K` cannot hold that many distinct keys
    /// (e.g. asking for > 65535 distinct `u16` keys).
    pub fn generate(n_present: usize, n_absent: usize, seed: u64) -> Self {
        let total = n_present + n_absent;
        let space = if K::BITS >= 64 {
            u64::MAX
        } else {
            (1u64 << K::BITS) - 1 // excludes the sentinel 0
        };
        assert!(
            (total as u64) <= space,
            "cannot draw {total} distinct {}-bit keys",
            K::BITS
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut seen: HashSet<K> = HashSet::with_capacity(total);
        let mut keys = Vec::with_capacity(total);
        while keys.len() < total {
            let k = K::from_u64(rng.gen::<u64>());
            if k != K::EMPTY && seen.insert(k) {
                keys.push(k);
            }
        }
        let absent = keys.split_off(n_present);
        KeySet {
            present: keys,
            absent,
        }
    }

    /// Keys loaded into the table, in popularity-rank order (index 0 is the
    /// hottest key under a skewed pattern).
    pub fn present(&self) -> &[K] {
        &self.present
    }

    /// Keys guaranteed absent from the table (miss traffic).
    pub fn absent(&self) -> &[K] {
        &self.absent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_are_disjoint_and_distinct() {
        let ks: KeySet<u32> = KeySet::generate(5000, 500, 3);
        let p: HashSet<u32> = ks.present().iter().copied().collect();
        let a: HashSet<u32> = ks.absent().iter().copied().collect();
        assert_eq!(p.len(), 5000);
        assert_eq!(a.len(), 500);
        assert!(p.is_disjoint(&a));
    }

    #[test]
    fn no_sentinel_keys() {
        let ks: KeySet<u16> = KeySet::generate(30_000, 1000, 9);
        assert!(ks.present().iter().all(|&k| k != 0));
        assert!(ks.absent().iter().all(|&k| k != 0));
    }

    #[test]
    fn deterministic_by_seed() {
        let a: KeySet<u64> = KeySet::generate(100, 10, 77);
        let b: KeySet<u64> = KeySet::generate(100, 10, 77);
        assert_eq!(a.present(), b.present());
        assert_eq!(a.absent(), b.absent());
        let c: KeySet<u64> = KeySet::generate(100, 10, 78);
        assert_ne!(a.present(), c.present());
    }

    #[test]
    #[should_panic(expected = "distinct 16-bit keys")]
    fn overfull_u16_space_panics() {
        let _: KeySet<u16> = KeySet::generate(70_000, 0, 1);
    }
}
