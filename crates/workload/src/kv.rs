//! memslap-style string key/value workloads for the key-value-store
//! validation experiments (paper §VI-B: 20 B keys, 32 B values, Multi-Get
//! batches of 16–96 keys).

use rand::Rng;
use rand::SeedableRng;

/// A corpus of string key/value pairs plus a Multi-Get request stream.
///
/// # Examples
///
/// ```
/// use simdht_workload::{AccessPattern, KvWorkload, KvWorkloadSpec};
///
/// let wl = KvWorkload::generate(&KvWorkloadSpec {
///     n_items: 100,
///     key_bytes: 20,
///     value_bytes: 32,
///     ..KvWorkloadSpec::default()
/// });
/// assert_eq!(wl.items().len(), 100);
/// assert_eq!(wl.items()[0].0.len(), 20);
/// assert_eq!(wl.items()[0].1.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct KvWorkload {
    items: Vec<(Vec<u8>, Vec<u8>)>,
    requests: Vec<Vec<usize>>,
}

/// Parameters for [`KvWorkload::generate`].
#[derive(Clone, Debug, PartialEq)]
pub struct KvWorkloadSpec {
    /// Number of distinct key-value items.
    pub n_items: usize,
    /// Key length in bytes (memslap default in the paper: 20 B).
    pub key_bytes: usize,
    /// Value length in bytes (paper: 32 B).
    pub value_bytes: usize,
    /// Number of Multi-Get requests to generate.
    pub n_requests: usize,
    /// Keys per Multi-Get request (paper: 16 / 64 / 96).
    pub mget_size: usize,
    /// Access pattern over items.
    pub pattern: crate::AccessPattern,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvWorkloadSpec {
    fn default() -> Self {
        KvWorkloadSpec {
            n_items: 10_000,
            key_bytes: 20,
            value_bytes: 32,
            n_requests: 1000,
            mget_size: 16,
            pattern: crate::AccessPattern::skewed(),
            seed: 0x4B_56,
        }
    }
}

impl KvWorkload {
    /// Generate items and a Multi-Get request stream.
    ///
    /// Keys are printable, distinct (`key-<rank>-<random pad>`), and padded
    /// to exactly `key_bytes`; values are random printable bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n_items == 0`, `mget_size == 0`, or `key_bytes` is too
    /// small to hold a distinct key (< 12 bytes).
    pub fn generate(spec: &KvWorkloadSpec) -> Self {
        assert!(spec.n_items > 0);
        assert!(spec.mget_size > 0);
        assert!(spec.key_bytes >= 12, "key_bytes must be >= 12");
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        let items = (0..spec.n_items)
            .map(|i| {
                let mut key = format!("k{i:08x}-").into_bytes();
                while key.len() < spec.key_bytes {
                    key.push(rng.gen_range(b'a'..=b'z'));
                }
                let value: Vec<u8> = (0..spec.value_bytes)
                    .map(|_| rng.gen_range(b' '..=b'~'))
                    .collect();
                (key, value)
            })
            .collect();
        let sampler = crate::RankSampler::new(spec.pattern, spec.n_items);
        let requests = (0..spec.n_requests)
            .map(|_| {
                (0..spec.mget_size)
                    .map(|_| sampler.sample(&mut rng))
                    .collect()
            })
            .collect();
        KvWorkload { items, requests }
    }

    /// The key-value items, indexed by popularity rank.
    pub fn items(&self) -> &[(Vec<u8>, Vec<u8>)] {
        &self.items
    }

    /// Multi-Get requests as lists of item indices into [`Self::items`].
    pub fn requests(&self) -> &[Vec<usize>] {
        &self.requests
    }

    /// Materialize request `r` as key slices.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn request_keys(&self, r: usize) -> Vec<&[u8]> {
        self.requests[r]
            .iter()
            .map(|&i| self.items[i].0.as_slice())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_distinct_and_sized() {
        let wl = KvWorkload::generate(&KvWorkloadSpec {
            n_items: 500,
            ..KvWorkloadSpec::default()
        });
        let keys: HashSet<&[u8]> = wl.items().iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys.len(), 500);
        assert!(wl
            .items()
            .iter()
            .all(|(k, v)| k.len() == 20 && v.len() == 32));
    }

    #[test]
    fn requests_have_mget_size() {
        let wl = KvWorkload::generate(&KvWorkloadSpec {
            n_items: 100,
            n_requests: 50,
            mget_size: 96,
            ..KvWorkloadSpec::default()
        });
        assert_eq!(wl.requests().len(), 50);
        assert!(wl.requests().iter().all(|r| r.len() == 96));
        assert!(wl.requests().iter().flatten().all(|&i| i < 100));
    }

    #[test]
    fn request_keys_resolve() {
        let wl = KvWorkload::generate(&KvWorkloadSpec {
            n_items: 10,
            n_requests: 3,
            mget_size: 4,
            ..KvWorkloadSpec::default()
        });
        let keys = wl.request_keys(0);
        assert_eq!(keys.len(), 4);
        assert!(keys.iter().all(|k| k.len() == 20));
    }

    #[test]
    fn skew_hits_head_items() {
        let wl = KvWorkload::generate(&KvWorkloadSpec {
            n_items: 1000,
            n_requests: 1000,
            mget_size: 16,
            pattern: crate::AccessPattern::skewed(),
            ..KvWorkloadSpec::default()
        });
        let head_refs = wl.requests().iter().flatten().filter(|&&i| i < 10).count();
        let total = 1000 * 16;
        assert!(
            head_refs as f64 / total as f64 > 0.1,
            "head items referenced only {head_refs}/{total}"
        );
    }
}
