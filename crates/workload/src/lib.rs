//! # simdht-workload
//!
//! Workload generation for **SimdHT-Bench** (IISWC 2019 reproduction): the
//! *workload data access pattern* design dimension (paper §III-A.2) plus the
//! Multi-Get string workloads of the key-value-store validation (§VI).
//!
//! * [`AccessPattern`] / [`RankSampler`] — uniform and Zipfian (mutilate-
//!   like) popularity distributions.
//! * [`KeySet`] — distinct hash keys, split into present / absent sets so
//!   traces can honor an exact hit rate.
//! * [`QueryTrace`] / [`TraceSpec`] — batched read-only lookup streams.
//! * [`KvWorkload`] — memslap-style string keys/values and Multi-Get
//!   request streams.
//!
//! ## Example
//!
//! ```
//! use simdht_workload::{AccessPattern, KeySet, QueryTrace, TraceSpec};
//!
//! let keys: KeySet<u32> = KeySet::generate(10_000, 1_000, 42);
//! let spec = TraceSpec::new(100_000, AccessPattern::skewed()).with_hit_rate(0.9);
//! let trace = QueryTrace::generate(&keys, &spec);
//! assert_eq!(trace.len(), 100_000);
//! // ~90 % of queries are keys the table will contain.
//! let rate = trace.expected_hits() as f64 / trace.len() as f64;
//! assert!((rate - 0.9).abs() < 0.01);
//! ```

#![warn(missing_docs)]

mod dist;
mod keyset;
mod kv;
mod trace;

pub use dist::{AccessPattern, RankSampler, DEFAULT_ZIPF_THETA};
pub use keyset::KeySet;
pub use kv::{KvWorkload, KvWorkloadSpec};
pub use trace::{QueryTrace, TraceSpec};
