//! Query-trace generation: the batched read streams the lookup kernels
//! consume (the paper's workload `p_k[n]`, Algorithms 1 & 2).

use rand::Rng;
use rand::SeedableRng;
use simdht_simd::Lane;

use crate::dist::{AccessPattern, RankSampler};
use crate::keyset::KeySet;

/// Parameters for a query trace.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceSpec {
    /// Number of lookups in the trace.
    pub len: usize,
    /// Fraction of lookups that hit (the paper's *hit rate* / selectivity,
    /// 0.9 in most case studies).
    pub hit_rate: f64,
    /// Access pattern over the present keys.
    pub pattern: AccessPattern,
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// A trace of `len` lookups at 90 % hit rate (the paper's default).
    pub fn new(len: usize, pattern: AccessPattern) -> Self {
        TraceSpec {
            len,
            hit_rate: 0.9,
            pattern,
            seed: 0xACCE55,
        }
    }

    /// Override the hit rate.
    ///
    /// # Panics
    ///
    /// Panics if `hit_rate` is outside `[0, 1]`.
    pub fn with_hit_rate(mut self, hit_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&hit_rate), "hit rate {hit_rate}");
        self.hit_rate = hit_rate;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated lookup trace.
#[derive(Clone, Debug)]
pub struct QueryTrace<K> {
    queries: Vec<K>,
    expected_hits: usize,
}

impl<K: Lane> QueryTrace<K> {
    /// Generate a trace over `keys` according to `spec`.
    ///
    /// Hit queries draw from `keys.present()` under `spec.pattern`
    /// (rank 0 = hottest); miss queries draw uniformly from `keys.absent()`.
    ///
    /// # Panics
    ///
    /// Panics if `keys.present()` is empty, or if `spec.hit_rate < 1` while
    /// `keys.absent()` is empty.
    pub fn generate(keys: &KeySet<K>, spec: &TraceSpec) -> Self {
        assert!(!keys.present().is_empty(), "no present keys");
        let wants_misses = spec.hit_rate < 1.0;
        assert!(
            !wants_misses || !keys.absent().is_empty(),
            "hit rate {} requires absent keys",
            spec.hit_rate
        );
        let sampler = RankSampler::new(spec.pattern, keys.present().len());
        let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
        let mut queries = Vec::with_capacity(spec.len);
        let mut expected_hits = 0usize;
        for _ in 0..spec.len {
            if rng.gen::<f64>() < spec.hit_rate {
                queries.push(keys.present()[sampler.sample(&mut rng)]);
                expected_hits += 1;
            } else {
                let i = rng.gen_range(0..keys.absent().len());
                queries.push(keys.absent()[i]);
            }
        }
        QueryTrace {
            queries,
            expected_hits,
        }
    }

    /// The lookup keys, in query order.
    pub fn queries(&self) -> &[K] {
        &self.queries
    }

    /// How many queries are hits (exact, by construction).
    pub fn expected_hits(&self) -> usize {
        self.expected_hits
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Split the trace into consecutive batches of `batch` keys — the
    /// Multi-Get framing (final partial batch included).
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = &[K]> {
        self.queries.chunks(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> KeySet<u32> {
        KeySet::generate(2000, 400, 12)
    }

    #[test]
    fn hit_rate_is_respected() {
        let ks = keys();
        let spec = TraceSpec::new(50_000, AccessPattern::Uniform).with_hit_rate(0.9);
        let trace = QueryTrace::generate(&ks, &spec);
        let present: std::collections::HashSet<u32> = ks.present().iter().copied().collect();
        let hits = trace
            .queries()
            .iter()
            .filter(|k| present.contains(k))
            .count();
        assert_eq!(hits, trace.expected_hits());
        let rate = hits as f64 / trace.len() as f64;
        assert!((0.88..0.92).contains(&rate), "hit rate {rate:.3}");
    }

    #[test]
    fn full_hit_rate_needs_no_absent_keys() {
        let ks: KeySet<u32> = KeySet::generate(100, 0, 1);
        let spec = TraceSpec::new(1000, AccessPattern::Uniform).with_hit_rate(1.0);
        let trace = QueryTrace::generate(&ks, &spec);
        assert_eq!(trace.expected_hits(), 1000);
    }

    #[test]
    #[should_panic(expected = "requires absent keys")]
    fn misses_without_absent_keys_panic() {
        let ks: KeySet<u32> = KeySet::generate(100, 0, 1);
        let spec = TraceSpec::new(10, AccessPattern::Uniform).with_hit_rate(0.5);
        let _ = QueryTrace::generate(&ks, &spec);
    }

    #[test]
    fn skewed_trace_prefers_low_ranks() {
        let ks = keys();
        let spec = TraceSpec::new(100_000, AccessPattern::skewed()).with_hit_rate(1.0);
        let trace = QueryTrace::generate(&ks, &spec);
        let hottest = ks.present()[0];
        let hot_count = trace.queries().iter().filter(|&&k| k == hottest).count();
        // Rank 0 under zipf(0.99) over 2000 items draws ~11 % of accesses.
        assert!(
            hot_count > 5_000,
            "hottest key drawn only {hot_count} times"
        );
    }

    #[test]
    fn batches_cover_everything() {
        let ks = keys();
        let spec = TraceSpec::new(1000, AccessPattern::Uniform);
        let trace = QueryTrace::generate(&ks, &spec);
        let total: usize = trace.batches(96).map(<[u32]>::len).sum();
        assert_eq!(total, 1000);
        assert_eq!(trace.batches(96).count(), 11); // 10 full + 1 partial
    }

    #[test]
    fn deterministic_by_seed() {
        let ks = keys();
        let spec = TraceSpec::new(1000, AccessPattern::skewed()).with_seed(5);
        let a = QueryTrace::generate(&ks, &spec);
        let b = QueryTrace::generate(&ks, &spec);
        assert_eq!(a.queries(), b.queries());
    }
}
