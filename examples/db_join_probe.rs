//! Database hash-join probe: the analytical-database scenario that
//! motivated vertical vectorization (paper §I and [Polychroniou et al.,
//! SIGMOD'15]).
//!
//! A hash join builds a table over the *build side* (dimension table keys →
//! row payloads) and then streams the much larger *probe side* through it.
//! Probe keys arrive in large batches with a uniform-ish distribution and a
//! selectivity below 1 — exactly the shape the vertical template was
//! designed for: `w` distinct probe keys per iteration, gathers into the
//! build table, misses filtered by the match mask.
//!
//! ```text
//! cargo run --release --example db_join_probe
//! ```

use std::time::Instant;

use simdht::core::dispatch::KernelLane;
use simdht::core::templates::scalar_lookup;
use simdht::core::validate::GatherMode;
use simdht::simd::{Backend, CpuFeatures, Width};
use simdht::table::{CuckooTable, Layout};
use simdht::workload::{KeySet, QueryTrace, TraceSpec};

const BUILD_ROWS: usize = 200_000;
const PROBE_ROWS: usize = 2_000_000;
const JOIN_SELECTIVITY: f64 = 0.75; // fraction of probe keys with a match

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build side: a 3-way cuckoo table at ~90 % load factor; payload is the
    // build-row id the join would materialize.
    let slots_needed = (BUILD_ROWS as f64 / 0.90) as usize;
    let log2 = (slots_needed.next_power_of_two()).trailing_zeros();
    let mut build: CuckooTable<u32, u32> = CuckooTable::new(Layout::n_way(3), log2)?;
    let keys: KeySet<u32> = KeySet::generate(BUILD_ROWS, BUILD_ROWS / 2, 0xD8);
    for (row, &k) in keys.present().iter().enumerate() {
        build.insert(k, row as u32 + 1)?;
    }
    println!(
        "build side: {} rows in a {} ({} KiB, LF {:.2})",
        build.len(),
        build.layout(),
        build.capacity() * 8 / 1024,
        build.load_factor()
    );

    // Probe side: a long uniform scan with 75 % selectivity.
    let trace = QueryTrace::generate(
        &keys,
        &TraceSpec::new(PROBE_ROWS, simdht::workload::AccessPattern::Uniform)
            .with_hit_rate(JOIN_SELECTIVITY),
    );
    let probes = trace.queries();
    let mut out = vec![0u32; probes.len()];

    // Scalar probe baseline.
    let t0 = Instant::now();
    let scalar_matches = scalar_lookup(&build, probes, &mut out);
    let scalar_time = t0.elapsed();

    // Vertical SIMD probe at the widest supported width.
    let caps = CpuFeatures::detect();
    let (backend, width) = match caps.native_widths().last() {
        Some(&w) => (Backend::Native, w),
        None => (Backend::Emulated, Width::W256),
    };
    let t1 = Instant::now();
    let simd_matches = u32::dispatch_vertical(
        backend,
        width,
        &build,
        probes,
        &mut out,
        GatherMode::PairedWide,
    )?;
    let simd_time = t1.elapsed();

    assert_eq!(scalar_matches, simd_matches, "join outputs must agree");
    let expected = trace.expected_hits();
    assert_eq!(simd_matches, expected);

    let rate = |d: std::time::Duration| PROBE_ROWS as f64 / d.as_secs_f64() / 1e6;
    println!(
        "probe side: {PROBE_ROWS} rows, selectivity {:.2}",
        expected as f64 / PROBE_ROWS as f64
    );
    println!("  scalar probe   : {:>8.1} Mprobes/s", rate(scalar_time));
    println!(
        "  vertical {width}: {:>8.1} Mprobes/s  ({:.2}x)",
        rate(simd_time),
        scalar_time.as_secs_f64() / simd_time.as_secs_f64()
    );
    Ok(())
}
