//! Key-value store Multi-Get: the paper's validation scenario (§VI) as a
//! runnable demo — a simulated RDMA-Memcached server answering memslap
//! Multi-Get load with three interchangeable hash-index backends.
//!
//! ```text
//! cargo run --release --example kvs_multiget
//! ```

use simdht::kvs::index::{HashIndex, Memc3Index, SimdIndex, SimdIndexKind};
use simdht::kvs::memslap::{run_memslap, MemslapConfig};
use simdht::kvs::store::{KvStore, StoreConfig};
use simdht::kvs::transport::FabricConfig;
use simdht::workload::{AccessPattern, KvWorkload, KvWorkloadSpec};

const ITEMS: usize = 20_000;
const REQUESTS: usize = 2_000;
const MGET: usize = 64;

fn index(which: &str) -> Box<dyn HashIndex> {
    match which {
        "MemC3" => Box::new(Memc3Index::with_capacity(ITEMS * 2)),
        "Hor-SIMD" => Box::new(SimdIndex::with_capacity(
            SimdIndexKind::HorizontalBcht,
            ITEMS * 2,
        )),
        _ => Box::new(SimdIndex::with_capacity(
            SimdIndexKind::VerticalNway,
            ITEMS * 2,
        )),
    }
}

fn main() {
    // memslap-style workload: 20 B keys, 32 B values, skewed popularity,
    // 64 keys per Multi-Get (the paper sweeps 16–96).
    let workload = KvWorkload::generate(&KvWorkloadSpec {
        n_items: ITEMS,
        n_requests: REQUESTS,
        mget_size: MGET,
        key_bytes: 20,
        value_bytes: 32,
        pattern: AccessPattern::skewed(),
        seed: 7,
    });
    let config = MemslapConfig {
        clients: 2,
        server_workers: 2,
        fabric: FabricConfig::ib_edr(),
        store: StoreConfig {
            memory_budget: 64 << 20,
            capacity_items: ITEMS * 2,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
        ..MemslapConfig::default()
    };

    println!(
        "memslap: {REQUESTS} Multi-Get requests x {MGET} keys over {ITEMS} items\n\
         fabric: IB-EDR model ({} ns base, {} Gb/s)\n",
        config.fabric.base_latency_ns, config.fabric.bandwidth_gbps
    );

    let mut baseline = None;
    for which in ["MemC3", "Hor-SIMD", "Ver-SIMD"] {
        let store = KvStore::new(index(which), config.store);
        let report = run_memslap(store, &workload, &config);
        let thr = report.server_keys_per_sec / 1e6;
        let vs = baseline
            .map(|b: f64| format!("{:.2}x vs MemC3", report.server_keys_per_sec / b))
            .unwrap_or_else(|| {
                baseline = Some(report.server_keys_per_sec);
                "baseline".to_string()
            });
        let total = report.phases.total().max(1) as f64;
        println!("{:-^72}", format!(" {} ", report.index_name));
        println!(
            "  server Get throughput : {thr:>8.2} Mkeys/s   ({vs})\n\
             \x20 e2e Multi-Get latency : mean {:>7.1} us, p50 {:>7.1}, p95 {:>7.1}, p99 {:>7.1}\n\
             \x20 server phases         : pre {:>4.1}% | HT lookup {:>4.1}% | post {:>4.1}%\n\
             \x20 hits                  : {}/{}",
            report.mean_latency_us,
            report.p50_latency_us,
            report.p95_latency_us,
            report.p99_latency_us,
            report.phases.pre as f64 / total * 100.0,
            report.phases.lookup as f64 / total * 100.0,
            report.phases.post as f64 / total * 100.0,
            report.found,
            report.keys,
        );
    }
}
