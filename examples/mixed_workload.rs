//! Mixed read/write workload over a sharded, concurrently accessed cuckoo
//! table — the paper's future-work scenario, runnable.
//!
//! Worker threads issue 512-key batched lookups (Multi-Get style) mixed
//! with in-place updates at increasing write fractions; the batched path
//! runs either the scalar probe or the widest SIMD design the machine
//! supports, per shard, under shard read locks.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use simdht::core::mixed::{best_design_for, run_mixed, MixedSpec};
use simdht::simd::CpuFeatures;
use simdht::table::Layout;

fn main() {
    let caps = CpuFeatures::detect();
    let layout = Layout::n_way(3);
    let design = best_design_for(layout, 32, &caps);
    match design {
        Some(d) => println!("SIMD lookup design: {d}\n"),
        None => println!("no native SIMD support — comparing scalar vs scalar\n"),
    }

    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>10}",
        "write fraction", "scalar Mops/s", "SIMD Mops/s", "SIMD gain", "updates"
    );
    for wf in [0.0, 0.02, 0.10, 0.25, 0.50] {
        let spec = MixedSpec {
            threads: 2,
            batch: 512,
            ops_per_thread: 1 << 17,
            ..MixedSpec::new(layout, wf)
        };
        let scalar = run_mixed::<u32>(&spec, None).expect("scalar run");
        let simd = run_mixed::<u32>(&spec, design).expect("simd run");
        assert_eq!(
            scalar.hits, scalar.lookups,
            "sampled keys are always present"
        );
        println!(
            "{:<16.2} {:>14.2} {:>14.2} {:>11.2}x {:>10}",
            wf,
            scalar.ops_per_sec / 1e6,
            simd.ops_per_sec / 1e6,
            simd.ops_per_sec / scalar.ops_per_sec,
            simd.updates,
        );
    }
    println!(
        "\nThe SIMD advantage is largest for read-dominated mixes and erodes as\n\
         write locking and relocation traffic grow — the trade-off the paper's\n\
         future-work section set out to quantify."
    );
}
