//! Network packet classification: the flow-table scenario behind
//! CuckooSwitch, Cuckoo++ and DPDK's `rte_hash` (paper Table I).
//!
//! A software switch hashes each packet's flow id and looks it up in a
//! bucketized cuckoo flow table to find the output port. Accesses are
//! close to uniform (no flow dominates a core's queue after RSS), lookups
//! arrive in receive-burst batches (32 packets, like DPDK's `rx_burst`),
//! and the table must sustain a high load factor — the horizontal-SIMD
//! BCHT's home turf.
//!
//! ```text
//! cargo run --release --example packet_classifier
//! ```

use std::time::Instant;

use simdht::core::dispatch::KernelLane;
use simdht::core::templates::scalar_lookup;
use simdht::core::validate::{hor_v_valid, ValidationOptions};
use simdht::simd::{Backend, CpuFeatures, Width};
use simdht::table::{CuckooTable, Layout};
use simdht::workload::{KeySet, QueryTrace, TraceSpec};

const FLOWS: usize = 60_000;
const PACKETS: usize = 2_000_000;
const RX_BURST: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Flow table: (2,4) BCHT, 32-bit flow-id hashes, 32-bit action ids
    // (port + counters index), filled to ~90 %.
    let layout = Layout::bcht(2, 4);
    let slots = (FLOWS as f64 / 0.90) as usize;
    let log2 = (slots / 4).next_power_of_two().trailing_zeros();
    let mut flows: CuckooTable<u32, u32> = CuckooTable::new(layout, log2)?;
    let keys: KeySet<u32> = KeySet::generate(FLOWS, FLOWS / 8, 0xF10);
    for (i, &flow) in keys.present().iter().enumerate() {
        let port = (i % 64) as u32 + 1; // 64 ports, action id != 0
        flows.insert(flow, port)?;
    }
    println!(
        "flow table: {} flows in a {} at LF {:.2}",
        flows.len(),
        flows.layout(),
        flows.load_factor()
    );

    // Sanity: what does the validation engine say about this layout?
    let bpv = hor_v_valid(Width::W256, layout, 32, 32).expect("AVX2 fits a (2,4) bucket");
    println!(
        "validation engine: AVX2 probes {bpv} bucket/vector; all options: {:?}\n",
        simdht::core::validate::enumerate_designs(layout, 32, 32, &ValidationOptions::default())
            .iter()
            .map(|d| d.listing_entry())
            .collect::<Vec<_>>()
    );

    // Packet stream: uniform flows, 2 % unknown flows (go to the slow path).
    let trace = QueryTrace::generate(
        &keys,
        &TraceSpec::new(PACKETS, simdht::workload::AccessPattern::Uniform).with_hit_rate(0.98),
    );

    let caps = CpuFeatures::detect();
    let backend = if caps.supports(Width::W256) {
        Backend::Native
    } else {
        Backend::Emulated
    };

    // Process in rx_burst-sized batches, as a poll-mode driver would.
    let mut actions = [0u32; RX_BURST];
    let mut forwarded = 0usize;
    let mut slow_path = 0usize;
    let t0 = Instant::now();
    for burst in trace.queries().chunks(RX_BURST) {
        let hits = u32::dispatch_horizontal(
            backend,
            Width::W256,
            &flows,
            burst,
            &mut actions[..burst.len()],
            1,
        )?;
        forwarded += hits;
        slow_path += burst.len() - hits;
    }
    let simd_time = t0.elapsed();

    // Scalar baseline over the same stream.
    let mut out = vec![0u32; trace.len()];
    let t1 = Instant::now();
    let scalar_hits = scalar_lookup(&flows, trace.queries(), &mut out);
    let scalar_time = t1.elapsed();
    assert_eq!(scalar_hits, forwarded);

    let mpps = |d: std::time::Duration| PACKETS as f64 / d.as_secs_f64() / 1e6;
    println!("processed {PACKETS} packets in bursts of {RX_BURST}:");
    println!("  forwarded {forwarded}, slow-path {slow_path}");
    println!("  scalar lookup    : {:>7.1} Mpps", mpps(scalar_time));
    println!(
        "  horizontal AVX2  : {:>7.1} Mpps  ({:.2}x)",
        mpps(simd_time),
        scalar_time.as_secs_f64() / simd_time.as_secs_f64()
    );
    Ok(())
}
