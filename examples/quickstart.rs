//! Quickstart: validate, build, probe, and measure — the whole SimdHT-Bench
//! flow in one file.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simdht::core::engine::{run_bench, BenchSpec};
use simdht::core::report::render_report;
use simdht::core::validate::{enumerate_designs, ValidationOptions};
use simdht::simd::CpuFeatures;
use simdht::table::{CuckooTable, Layout};
use simdht::workload::AccessPattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. What can this CPU do?
    let caps = CpuFeatures::detect();
    println!("CPU capabilities: {caps}\n");

    // 2. Ask the validation engine which SIMD designs fit a (2,4) BCHT
    //    with 32-bit hash keys and payloads (the MemC3 layout, SIMD-ified).
    let layout = Layout::bcht(2, 4);
    let designs = enumerate_designs(layout, 32, 32, &ValidationOptions::default());
    println!("validated SIMD designs for {layout}:");
    for d in &designs {
        let tag = if d.supported(&caps) {
            "native"
        } else {
            "emulated only"
        };
        println!("  {d}   [{tag}]");
    }

    // 3. Build a table by hand and probe it.
    let mut table: CuckooTable<u32, u32> = CuckooTable::with_bytes(layout, 64 * 1024)?;
    for key in 1..=2000u32 {
        table.insert(key, key * 2)?;
    }
    println!(
        "\nbuilt a {} with {} items (load factor {:.2})",
        table.layout(),
        table.len(),
        table.load_factor()
    );
    assert_eq!(table.get(1234), Some(2468));

    // 4. Run the performance engine: every validated design vs. scalar.
    let spec = BenchSpec {
        queries_per_thread: 1 << 16,
        repetitions: 3,
        ..BenchSpec::new(layout, 1 << 20, AccessPattern::Uniform)
    };
    let report = run_bench::<u32>(&spec)?;
    println!("\n{}", render_report(&report));
    println!(
        "best SIMD design is {:.2}x faster than the scalar probe",
        report.best_speedup()
    );
    Ok(())
}
