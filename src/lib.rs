//! # SimdHT-Bench
//!
//! A production-quality Rust reproduction of *"SimdHT-Bench: Characterizing
//! SIMD-Aware Hash Table Designs on Emerging CPU Architectures"*
//! (Shankar, Lu, Panda — IISWC 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`simd`] — the SIMD abstraction layer (portable emulated backend +
//!   SSE/AVX2/AVX-512 intrinsic backends).
//! * [`table`] — `(N, m)` cuckoo hash tables with SIMD-friendly layouts.
//! * [`workload`] — uniform/Zipfian traces, hit-rate mixing, Multi-Get
//!   batching, memslap-style string workloads.
//! * [`core`] — the paper's contribution: the validation engine
//!   (Listing 1), the horizontal/vertical/hybrid lookup templates
//!   (Algorithms 1 & 2), and the performance engine.
//! * [`kvs`] — the Memcached-like key-value store used to validate the
//!   suite (MemC3 baseline vs. SIMD indexes over a simulated RDMA fabric).
//!
//! ## Quickstart
//!
//! ```
//! use simdht::core::validate::{enumerate_designs, ValidationOptions};
//! use simdht::table::Layout;
//!
//! // Which SIMD designs can probe a (2,4) BCHT with 32-bit keys/payloads?
//! let designs = enumerate_designs(Layout::bcht(2, 4), 32, 32, &ValidationOptions::default());
//! let entries: Vec<String> = designs.iter().map(|d| d.listing_entry()).collect();
//! assert_eq!(entries, ["256 bit - 1 bucket/vec", "512 bit - 2 bucket/vec"]);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment runners that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use simdht_core as core;
pub use simdht_kvs as kvs;
pub use simdht_simd as simd;
pub use simdht_table as table;
pub use simdht_workload as workload;
