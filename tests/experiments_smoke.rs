//! Integration: every experiment runner completes in quick mode and emits
//! the structural markers its figure requires. This is the "does the whole
//! reproduction pipeline run" test; numbers are recorded in EXPERIMENTS.md.

use simdht_bench::experiments;

fn output(id: &str) -> String {
    experiments::run(id, true).unwrap_or_else(|| panic!("unknown experiment {id}"))
}

#[test]
fn table1_lists_surveyed_systems() {
    let out = output("table1");
    for name in ["MemC3", "SILT", "CuckooSwitch", "Cuckoo++", "DPDK"] {
        assert!(out.contains(name), "missing {name}");
    }
}

#[test]
fn fig2_reports_load_factor_shapes() {
    let out = output("fig2");
    assert!(out.contains("max load factor"));
    // Parse the N = 2 row: m = 1 must be near 0.5 and m = 8 near 1.
    let row = out
        .lines()
        .find(|l| l.trim_start().starts_with("2 "))
        .expect("N = 2 row");
    let vals: Vec<f64> = row
        .split_whitespace()
        .skip(1)
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(vals[0] < 0.7, "2-way LF should be ~0.5, got {}", vals[0]);
    assert!(vals[3] > 0.9, "(2,8) LF should be >0.9, got {}", vals[3]);
    assert!(
        vals.windows(2).all(|w| w[0] < w[1]),
        "LF must grow with m: {vals:?}"
    );
}

#[test]
fn listing1_reproduces_paper_output() {
    let out = output("listing1");
    assert!(out.contains("*(2,1) -> V-Ver, Opts: 256 bit - 8 keys/it, Opts: 512 bit - 16 keys/it"));
    assert!(out.contains("*(2,8) -> V-Hor, Opts: 512 bit - 1 bucket/vec"));
}

#[test]
fn fig9_hybrid_beats_scalar_but_not_vertical() {
    let out = output("fig9");
    assert!(out.contains("true vertical"));
    assert!(out.contains("hybrid"));
    assert!(out.contains("slower than true vertical"));
}

#[test]
fn fig11b_breaks_down_phases() {
    let out = output("fig11b");
    assert!(out.contains("pre"));
    assert!(out.contains("lookup"));
    assert!(out.contains("post"));
    assert!(out.contains("MemC3"));
    assert!(out.contains("[SIMD]"));
}

#[test]
fn ablations_run() {
    let gather = output("ablate-gather");
    assert!(gather.contains("paired wide"));
    assert!(gather.contains("narrow split"));
    let layout = output("ablate-layout");
    assert!(layout.contains("interleaved"));
    assert!(layout.contains("split"));
}
