//! Cross-crate integration: the full KVS path — workload generation,
//! store + index, server workers, simulated fabric, memslap client — for
//! all four index backends, plus cross-backend response equivalence.

use std::sync::Arc;

use bytes_equivalent::check_stores_agree;
use simdht::kvs::index::{HashIndex, Memc3Index, SimdIndex, SimdIndexKind, TagSimdIndex};
use simdht::kvs::memslap::{run_memslap, MemslapConfig};
use simdht::kvs::store::{KvStore, MGetResponse, StoreConfig};
use simdht::workload::{AccessPattern, KvWorkload, KvWorkloadSpec};

fn indexes(capacity: usize) -> Vec<Box<dyn HashIndex>> {
    vec![
        Box::new(Memc3Index::with_capacity(capacity)),
        Box::new(SimdIndex::with_capacity(
            SimdIndexKind::HorizontalBcht,
            capacity,
        )),
        Box::new(SimdIndex::with_capacity(
            SimdIndexKind::VerticalNway,
            capacity,
        )),
        Box::new(TagSimdIndex::with_capacity(capacity)),
    ]
}

mod bytes_equivalent {
    use super::*;

    /// All stores must answer an identical mget stream identically.
    pub fn check_stores_agree(stores: &[KvStore], requests: &[Vec<&[u8]>]) {
        let mut buffers: Vec<MGetResponse> = stores.iter().map(|_| MGetResponse::new()).collect();
        for keys in requests {
            let mut reference: Option<Vec<Option<Vec<u8>>>> = None;
            for (store, resp) in stores.iter().zip(buffers.iter_mut()) {
                store.mget(keys, resp);
                let answers: Vec<Option<Vec<u8>>> = (0..keys.len())
                    .map(|i| resp.value(i).map(<[u8]>::to_vec))
                    .collect();
                match &reference {
                    None => reference = Some(answers),
                    Some(r) => assert_eq!(&answers, r, "stores disagree ({})", store.index_name()),
                }
            }
        }
    }
}

#[test]
fn all_backends_answer_identically() {
    let wl = KvWorkload::generate(&KvWorkloadSpec {
        n_items: 3000,
        n_requests: 200,
        mget_size: 24,
        ..KvWorkloadSpec::default()
    });
    let cfg = StoreConfig {
        memory_budget: 16 << 20,
        capacity_items: 8000,
        shards: 1,
        prefetch_depth: None,
        ..StoreConfig::default()
    };
    let stores: Vec<KvStore> = indexes(8000)
        .into_iter()
        .map(|idx| {
            let s = KvStore::new(idx, cfg);
            for (k, v) in wl.items() {
                s.set(k, v).unwrap();
            }
            // Delete a deterministic subset so misses appear.
            for (k, _) in wl.items().iter().step_by(7) {
                assert!(s.delete(k));
            }
            s
        })
        .collect();
    let requests: Vec<Vec<&[u8]>> = (0..wl.requests().len())
        .map(|r| wl.request_keys(r))
        .collect();
    check_stores_agree(&stores, &requests);
}

#[test]
fn memslap_full_pipeline_all_backends() {
    let wl = KvWorkload::generate(&KvWorkloadSpec {
        n_items: 2000,
        n_requests: 150,
        mget_size: 16,
        pattern: AccessPattern::skewed(),
        ..KvWorkloadSpec::default()
    });
    let config = MemslapConfig {
        clients: 2,
        server_workers: 2,
        store: StoreConfig {
            memory_budget: 16 << 20,
            capacity_items: 5000,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
        ..MemslapConfig::default()
    };
    for idx in indexes(5000) {
        let name = idx.name();
        let store = KvStore::new(idx, config.store);
        let report = run_memslap(store, &wl, &config);
        assert_eq!(report.requests, 150, "{name}");
        assert_eq!(report.keys, 150 * 16, "{name}");
        assert_eq!(report.found, report.keys, "{name}: preloaded keys must hit");
        assert!(report.server_keys_per_sec > 0.0, "{name}");
        assert!(report.p99_latency_us >= report.p50_latency_us, "{name}");
        // The wire model floors every latency at ~2 x 1.5 us.
        assert!(report.min_latency_us >= 3.0, "{name}");
        let phases = report.phases;
        assert!(
            phases.pre > 0 && phases.lookup > 0 && phases.post > 0,
            "{name}"
        );
    }
}

#[test]
fn store_concurrent_mixed_load() {
    // Readers and writers concurrently against the SIMD-vertical store.
    let store = Arc::new(KvStore::new(
        Box::new(SimdIndex::with_capacity(
            SimdIndexKind::VerticalNway,
            20_000,
        )),
        StoreConfig {
            memory_budget: 32 << 20,
            capacity_items: 20_000,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
    ));
    for i in 0..5000u32 {
        store
            .set(format!("stable-{i:05}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..3 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let mut resp = MGetResponse::new();
                for round in 0..400u32 {
                    let i = (round * 13 + t * 7) % 5000;
                    let key = format!("stable-{i:05}");
                    let out = store.mget(&[key.as_bytes()], &mut resp);
                    assert_eq!(out.found, 1, "missing {key}");
                    assert_eq!(resp.value(0), Some(&i.to_le_bytes()[..]));
                }
            });
        }
        let store = Arc::clone(&store);
        s.spawn(move || {
            for i in 5000..6000u32 {
                store
                    .set(format!("fresh-{i:05}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
        });
    });
    assert_eq!(store.len(), 6000);
    assert_eq!(
        store.get(b"fresh-05999").as_deref(),
        Some(&5999u32.to_le_bytes()[..])
    );
}

#[test]
fn updates_and_value_growth() {
    for idx in indexes(1000) {
        let store = KvStore::new(
            idx,
            StoreConfig {
                memory_budget: 8 << 20,
                capacity_items: 1000,
                shards: 1,
                prefetch_depth: None,
                ..StoreConfig::default()
            },
        );
        for round in 0..5 {
            let value = vec![b'a' + round as u8; 16 << round]; // 16..256 B
            for i in 0..200u32 {
                store.set(format!("grow-{i}").as_bytes(), &value).unwrap();
            }
            for i in (0..200u32).step_by(17) {
                assert_eq!(
                    store.get(format!("grow-{i}").as_bytes()).as_deref(),
                    Some(&value[..]),
                    "round {round}"
                );
            }
            assert_eq!(store.len(), 200);
        }
    }
}
