//! End-to-end over real sockets: a `Kvsd` daemon on an ephemeral loopback
//! port serving concurrent pipelined MGet/Set traffic from the networked
//! memslap client, for both the MemC3 baseline and a SIMD index — the
//! acceptance path of the TCP transport subsystem.

use std::sync::Arc;

use simdht::kvs::index;
use simdht::kvs::kvsd::Kvsd;
use simdht::kvs::memslap::{run_memslap_over, NetMemslapConfig};
use simdht::kvs::net::{TcpConn, TcpTransport};
use simdht::kvs::protocol::{Request, Response};
use simdht::kvs::store::{KvStore, StoreConfig};
use simdht::kvs::transport::ClientConn;
use simdht::workload::{KvWorkload, KvWorkloadSpec};

use bytes::Bytes;

fn spawn_kvsd(index_name: &str, capacity: usize) -> Kvsd {
    let store = Arc::new(KvStore::new(
        index::by_short_name(index_name, capacity).expect("known index"),
        StoreConfig {
            memory_budget: 16 << 20,
            capacity_items: capacity,
            shards: 1,
            prefetch_depth: None,
            ..StoreConfig::default()
        },
    ));
    Kvsd::bind(store, "127.0.0.1:0").expect("bind ephemeral loopback port")
}

#[test]
fn networked_memslap_roundtrip_memc3_and_simd() {
    let workload = KvWorkload::generate(&KvWorkloadSpec {
        n_items: 1500,
        n_requests: 200,
        mget_size: 16,
        ..KvWorkloadSpec::default()
    });
    for which in ["memc3", "ver"] {
        let kvsd = spawn_kvsd(which, 5000);
        let transport = TcpTransport::new(kvsd.local_addr()).unwrap();
        let report = run_memslap_over(
            &transport,
            &workload,
            &NetMemslapConfig {
                connections: 3,
                pipeline_depth: 8,
                set_fraction: 0.1,
                preload: true,
                ..NetMemslapConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{which}: {e}"));

        assert_eq!(report.requests + report.sets, 200, "{which}");
        assert!(report.sets > 5, "{which}: set mix missing");
        assert_eq!(report.keys, report.requests * 16, "{which}");
        // Every item was preloaded and Sets only overwrite existing keys.
        assert_eq!(report.hits, report.keys, "{which}: unexpected misses");
        assert_eq!(report.misses, 0, "{which}");
        // Percentiles are populated, ordered, and from a real clock.
        assert!(report.p50_latency_us > 0.0, "{which}");
        assert!(report.p95_latency_us >= report.p50_latency_us, "{which}");
        assert!(report.p99_latency_us >= report.p95_latency_us, "{which}");
        assert!(report.min_latency_us <= report.mean_latency_us, "{which}");
        assert!(report.keys_per_sec > 0.0, "{which}");

        // The server's aggregate stats agree with the client's view.
        let stats = kvsd.stats();
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(stats.requests.load(Relaxed), report.requests, "{which}");
        assert_eq!(stats.keys.load(Relaxed), report.keys, "{which}");
        assert_eq!(stats.found.load(Relaxed), report.hits, "{which}");

        // Drain returns one summary per connection (3 run + 1 preload),
        // jointly accounting for every request.
        let summaries = kvsd.shutdown();
        assert_eq!(summaries.len(), 4, "{which}");
        let total_mgets: u64 = summaries.iter().map(|s| s.requests).sum();
        assert_eq!(total_mgets, report.requests, "{which}");
    }
}

#[test]
fn mget_hit_miss_pattern_is_exact_over_tcp() {
    let kvsd = spawn_kvsd("hor", 1000);
    let mut conn = TcpConn::connect(kvsd.local_addr()).unwrap();

    // Store two known pairs, pipelined with the subsequent lookup.
    for (id, key, value) in [(1u64, &b"alpha"[..], &b"A"[..]), (2, b"beta", b"B")] {
        conn.send(
            Request::Set {
                id,
                key: Bytes::copy_from_slice(key),
                value: Bytes::copy_from_slice(value),
            }
            .encode(),
        )
        .unwrap();
    }
    conn.send(
        Request::MGet {
            id: 3,
            keys: ["alpha", "missing", "beta", "also-missing"]
                .iter()
                .map(|k| Bytes::copy_from_slice(k.as_bytes()))
                .collect(),
        }
        .encode(),
    )
    .unwrap();

    for expect_id in [1u64, 2] {
        match Response::decode(conn.recv().unwrap().0).unwrap() {
            Response::Set { id, ok } => {
                assert_eq!(id, expect_id);
                assert!(ok);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    match Response::decode(conn.recv().unwrap().0).unwrap() {
        Response::MGet { id, entries } => {
            assert_eq!(id, 3);
            assert_eq!(entries.len(), 4);
            assert_eq!(entries[0].as_deref(), Some(&b"A"[..]));
            assert_eq!(entries[1], None, "absent key must miss");
            assert_eq!(entries[2].as_deref(), Some(&b"B"[..]));
            assert_eq!(entries[3], None, "absent key must miss");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(conn);
    kvsd.shutdown();
}

#[test]
fn concurrent_clients_share_one_daemon() {
    let kvsd = spawn_kvsd("ver", 2000);
    let addr = kvsd.local_addr();
    // Populate from one client; read from many concurrently.
    let mut seed_conn = TcpConn::connect(addr).unwrap();
    for i in 0..500u32 {
        seed_conn
            .send(
                Request::Set {
                    id: u64::from(i),
                    key: Bytes::from(format!("shared-{i:04}").into_bytes()),
                    value: Bytes::copy_from_slice(&i.to_le_bytes()),
                }
                .encode(),
            )
            .unwrap();
    }
    for _ in 0..500 {
        let (frame, _) = seed_conn.recv().unwrap();
        assert!(matches!(
            Response::decode(frame).unwrap(),
            Response::Set { ok: true, .. }
        ));
    }

    std::thread::scope(|s| {
        for t in 0..4u32 {
            s.spawn(move || {
                let mut conn = TcpConn::connect(addr).unwrap();
                for round in 0..50u32 {
                    let i = (round * 11 + t * 3) % 500;
                    conn.send(
                        Request::MGet {
                            id: u64::from(round),
                            keys: vec![Bytes::from(format!("shared-{i:04}").into_bytes())],
                        }
                        .encode(),
                    )
                    .unwrap();
                    match Response::decode(conn.recv().unwrap().0).unwrap() {
                        Response::MGet { entries, .. } => {
                            assert_eq!(entries[0].as_deref(), Some(&i.to_le_bytes()[..]));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });
    drop(seed_conn);
    kvsd.shutdown();
}
