//! Cross-crate integration: every validated SIMD design, on every backend,
//! over realistic generated workloads, must return bit-identical results to
//! the scalar probe — the validation engine's correctness contract.

use simdht::core::dispatch::{run_design, run_scalar};
use simdht::core::validate::{enumerate_designs, ValidationOptions};
use simdht::simd::{Backend, CpuFeatures};
use simdht::table::{Arrangement, CuckooTable, Layout};
use simdht::workload::{AccessPattern, KeySet, QueryTrace, TraceSpec};

fn full_options() -> ValidationOptions {
    ValidationOptions {
        include_hybrid: true,
        allow_128_bit_vertical: true,
        ..ValidationOptions::default()
    }
}

fn populated_u32(
    layout: Layout,
    log2: u32,
    lf: f64,
    seed: u64,
) -> (CuckooTable<u32, u32>, KeySet<u32>) {
    let mut table = CuckooTable::new(layout, log2).unwrap();
    let n = (table.capacity() as f64 * lf) as usize;
    let keys: KeySet<u32> = KeySet::generate(n, n / 4 + 64, seed);
    let mut inserted = 0;
    for (i, &k) in keys.present().iter().enumerate() {
        if table.insert(k, i as u32 + 1).is_err() {
            break;
        }
        inserted += 1;
    }
    assert!(
        inserted as f64 / n as f64 > 0.95,
        "{layout}: table filled poorly"
    );
    (table, keys)
}

#[test]
fn every_design_matches_scalar_on_generated_traces() {
    let caps = CpuFeatures::detect();
    let layouts = [
        Layout::n_way(2),
        Layout::n_way(3),
        Layout::n_way(4),
        Layout::bcht(2, 2),
        Layout::bcht(2, 4),
        Layout::bcht(2, 8),
        Layout::bcht(3, 2),
        Layout::bcht(3, 4),
        Layout::bcht(3, 8),
        Layout::n_way(3).with_arrangement(Arrangement::Split),
        Layout::bcht(2, 4).with_arrangement(Arrangement::Split),
    ];
    for (li, layout) in layouts.into_iter().enumerate() {
        // 2-way non-bucketized cannot sustain a high LF; use 0.45 there.
        let lf = if layout.slots_per_bucket() == 1 && layout.n_ways() == 2 {
            0.45
        } else {
            0.85
        };
        let (table, keys) = populated_u32(layout, 10, lf, 42 + li as u64);
        for pattern in [AccessPattern::Uniform, AccessPattern::skewed()] {
            let trace = QueryTrace::generate(
                &keys,
                &TraceSpec::new(5000, pattern)
                    .with_hit_rate(0.8)
                    .with_seed(li as u64),
            );
            let mut expect = vec![0u32; trace.len()];
            run_scalar(&table, trace.queries(), &mut expect);
            for design in enumerate_designs(layout, 32, 32, &full_options()) {
                for backend in [Backend::Emulated, Backend::Native] {
                    if backend == Backend::Native && !design.supported(&caps) {
                        continue;
                    }
                    let mut got = vec![0u32; trace.len()];
                    run_design(backend, &design, &table, trace.queries(), &mut got)
                        .unwrap_or_else(|e| panic!("{layout} {design} {backend}: {e}"));
                    assert_eq!(
                        got,
                        expect,
                        "{layout} {design} {backend} {} disagrees with scalar",
                        pattern.label()
                    );
                }
            }
        }
    }
}

#[test]
fn u16_and_u64_designs_match_scalar() {
    let caps = CpuFeatures::detect();

    // u64 vertical over 3-way.
    let mut t64: CuckooTable<u64, u64> = CuckooTable::new(Layout::n_way(3), 12).unwrap();
    let k64: KeySet<u64> = KeySet::generate(3000, 500, 9);
    for (i, &k) in k64.present().iter().enumerate() {
        t64.insert(k, i as u64 + 1).unwrap();
    }
    let trace64 = QueryTrace::generate(&k64, &TraceSpec::new(4000, AccessPattern::Uniform));
    let mut expect64 = vec![0u64; trace64.len()];
    run_scalar(&t64, trace64.queries(), &mut expect64);
    for design in enumerate_designs(Layout::n_way(3), 64, 64, &ValidationOptions::default()) {
        for backend in [Backend::Emulated, Backend::Native] {
            if backend == Backend::Native && !design.supported(&caps) {
                continue;
            }
            let mut got = vec![0u64; trace64.len()];
            run_design(backend, &design, &t64, trace64.queries(), &mut got).unwrap();
            assert_eq!(got, expect64, "u64 {design} {backend}");
        }
    }

    // u16 horizontal over a (2,8) split BCHT with u32 payloads (Case Study ②).
    use simdht::core::dispatch::KernelLane;
    let layout = Layout::bcht(2, 8).with_arrangement(Arrangement::Split);
    let mut t16: CuckooTable<u16, u32> = CuckooTable::new(layout, 8).unwrap();
    let k16: KeySet<u16> = KeySet::generate(1600, 300, 5);
    for (i, &k) in k16.present().iter().enumerate() {
        t16.insert(k, i as u32 + 1).unwrap();
    }
    let trace16 = QueryTrace::generate(&k16, &TraceSpec::new(3000, AccessPattern::skewed()));
    let mut expect16 = vec![0u32; trace16.len()];
    run_scalar(&t16, trace16.queries(), &mut expect16);
    for design in enumerate_designs(layout, 16, 32, &ValidationOptions::default()) {
        for backend in [Backend::Emulated, Backend::Native] {
            if backend == Backend::Native && !design.supported(&caps) {
                continue;
            }
            let mut got = vec![0u32; trace16.len()];
            u16::dispatch_horizontal(
                backend,
                design.width,
                &t16,
                trace16.queries(),
                &mut got,
                design.parallelism,
            )
            .unwrap();
            assert_eq!(got, expect16, "u16 {design} {backend}");
        }
    }
}

#[test]
fn designs_survive_removals() {
    // Deletion leaves holes (empty slots between occupied ones); vector
    // probes must not be confused by them.
    let caps = CpuFeatures::detect();
    let (mut table, keys) = populated_u32(Layout::bcht(2, 4), 9, 0.8, 77);
    for &k in keys.present().iter().step_by(3) {
        table.remove(k);
    }
    let queries: Vec<u32> = keys.present().to_vec();
    let mut expect = vec![0u32; queries.len()];
    run_scalar(&table, &queries, &mut expect);
    for design in enumerate_designs(Layout::bcht(2, 4), 32, 32, &full_options()) {
        for backend in [Backend::Emulated, Backend::Native] {
            if backend == Backend::Native && !design.supported(&caps) {
                continue;
            }
            let mut got = vec![0u32; queries.len()];
            run_design(backend, &design, &table, &queries, &mut got).unwrap();
            assert_eq!(got, expect, "{design} {backend} after removals");
        }
    }
}
