//! Offline shim for the `bytes` crate: cheaply cloneable byte buffers.
//!
//! Implements the subset of `bytes 1.x` this workspace uses: [`Bytes`]
//! (an `Arc`-backed slice with zero-copy `slice`/`split_to`), [`BytesMut`]
//! (a growable builder that freezes into [`Bytes`]), and the [`Buf`] /
//! [`BufMut`] cursor traits with little-endian integer accessors.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of bytes.
///
/// Clones share the same backing allocation; `slice` and `split_to` are
/// O(1) and never copy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer holding `data` (copied once into a shared allocation).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A buffer over a static slice.
    ///
    /// The shim copies into a shared allocation; upstream borrows. The
    /// observable behavior is identical.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them. Zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Clear the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Consume a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Consume `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "Buf underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&r[..], b"tail");
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let s = head.slice(1..4);
        assert_eq!(&s[..], b"ell");
        assert_eq!(head.slice(..), head);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        Bytes::copy_from_slice(b"ab").split_to(3);
    }
}
