//! Offline shim for the `criterion` crate: a lightweight wall-clock
//! benchmark harness.
//!
//! Implements the API surface this workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with [`Throughput`] annotations, [`BenchmarkId`], and
//! [`Bencher::iter`] — measuring each benchmark with a short warm-up and
//! a fixed measurement window, reporting mean/min time per iteration (and
//! derived throughput) on stdout. No statistical analysis, baselines, or
//! HTML reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration annotation used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier: function name + parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark names.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &String {
    fn into_id(self) -> String {
        self.clone()
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// (total duration, iterations) recorded by [`Bencher::iter`].
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f` repeatedly: warm up, then run for the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Measure in batches sized to ~1/10 of the window to amortize
        // clock reads.
        let batch = ((self.measure.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's measurement window is
    /// time-based, so the sample count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (prints a trailing newline for readability).
    pub fn finish(self) {
        println!();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        warm_up: criterion.warm_up,
        measure: criterion.measure,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) => {
            let per_iter_ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            let thr = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>10.1} Melem/s", n as f64 / per_iter_ns * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>10.1} MiB/s", n as f64 / per_iter_ns * 1e3 * 0.953674)
                }
                None => String::new(),
            };
            println!(
                "{name:<60} {:>12.1} ns/iter ({iters} iters){thr}",
                per_iter_ns
            );
        }
        None => println!("{name:<60} (no measurement: closure never called iter)"),
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short windows keep full bench suites tractable while remaining
        // stable enough for coarse comparisons. Override with
        // `SIMDHT_BENCH_MEASURE_MS` if more precision is wanted.
        let ms = std::env::var("SIMDHT_BENCH_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            warm_up: Duration::from_millis(ms / 3),
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        run_one(self, &full, None, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("sum", "0..100"), |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u32, |b, &n| {
            b.iter(|| (0u64..n as u64).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        std::env::set_var("SIMDHT_BENCH_MEASURE_MS", "30");
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        criterion.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
