//! Offline shim for the `crossbeam` crate: MPMC channels.
//!
//! Implements `crossbeam::channel`'s [`bounded`]/[`unbounded`] channels
//! with the upstream disconnect semantics (send fails once every receiver
//! is gone; recv drains the queue, then fails once every sender is gone)
//! on top of `std::sync` primitives.
//!
//! [`bounded`]: channel::bounded
//! [`unbounded`]: channel::unbounded

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` for unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the undelivered message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable; messages are delivered
    /// to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded channel holding at most `cap` in-flight messages.
    /// [`Sender::send`] blocks while the channel is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (upstream's zero-capacity rendezvous channels
    /// are not implemented by this shim; nothing in the workspace uses
    /// them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] (returning `msg`) if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the channel is empty and all senders are
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no message is queued,
        /// [`TryRecvError::Disconnected`] if additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive, blocking for at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if no message arrived in time,
        /// [`RecvTimeoutError::Disconnected`] if the channel is empty and
        /// all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &*self.shared;
            let deadline = Instant::now() + timeout;
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees up
            tx.len()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = std::thread::spawn(move || {
            let mut got = vec![];
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let h2 = std::thread::spawn(move || {
            let mut got = vec![];
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
