//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s `Result`-free API
//! (`lock()`/`read()`/`write()` return guards directly). Poisoning is
//! ignored, matching `parking_lot`'s behavior of not poisoning at all.

use std::sync::{self, LockResult, PoisonError};

fn ignore_poison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.inner.lock())
    }

    /// Acquire the lock if immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

/// A reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.inner.read())
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.inner.write())
    }

    /// Acquire a read guard if immediately available.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire a write guard if immediately available.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
