//! Offline shim for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses —
//! [`Strategy`], `any::<T>()`, integer ranges, tuples, [`Just`],
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::Index`, and the [`proptest!`] test macro — as a plain
//! randomized test runner. Each test runs `ProptestConfig::cases` random
//! cases from a seed derived deterministically from the test name.
//!
//! **No shrinking**: a failing case panics with its assertion message but
//! is not minimized. That trade keeps the shim tiny while preserving the
//! bug-finding power of the property tests.

use std::marker::PhantomData;

/// The random source handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator deterministically.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy choosing uniformly between its arms (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start as u64 == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                (start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical [`Strategy`] (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The canonical strategy for `T` (full value range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// Strategy yielding `None` about a quarter of the time and
    /// `Some(inner)` otherwise (upstream defaults to 90 % `Some`; any
    /// fixed mix exercises both arms).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, TestRng};

    /// A position into a collection of not-yet-known length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolve against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// Derive a stable 64-bit seed from a test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Choose uniformly between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::seed_from_u64($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
            for case in 0..config.cases {
                $(let mut $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} failed in {} (no shrinking in offline shim)",
                        case + 1, config.cases, stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! Everything a property test needs.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (1u32..10, 5u8..=6);
        for _ in 0..1000 {
            let (a, b) = strat.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_respects_size_spec() {
        let mut rng = TestRng::seed_from_u64(3);
        let ranged = prop::collection::vec(any::<u8>(), 2..5);
        let exact = prop::collection::vec(any::<u8>(), 7);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = prop::option::of(any::<u32>());
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(idx in any::<prop::sample::Index>()) {
            let i = idx.index(10);
            prop_assert!(i < 10);
        }
    }
}
