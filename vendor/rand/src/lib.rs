//! Offline shim for the `rand 0.8` crate.
//!
//! Implements the subset this workspace uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`] (a xoshiro256++ generator
//! seeded through SplitMix64 — deterministic per seed, though its stream
//! differs from upstream's ChaCha12), uniform [`Rng::gen_range`] over
//! integer ranges, and the [`distributions::Standard`] distribution for
//! primitives.

pub mod distributions {
    //! Sampling distributions.

    use crate::RngCore;

    /// Types that can produce values of `T` from a random source.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution for primitives; `f64`/`f32`
    /// sample uniformly from `[0, 1)`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire); bias < 2^-64 * span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64) + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(hi as $u) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                (start as $u).wrapping_add(hi as $u) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64. (Upstream `rand 0.8` uses ChaCha12; seeded streams
    /// therefore differ from upstream, but are stable per seed here.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "small" generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let idx = rng.gen_range(0..3usize);
            assert!(idx < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn full_range_inclusive_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u8 = rng.gen_range(0..=u8::MAX);
    }
}
